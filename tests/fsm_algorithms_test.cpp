// Unit tests for fsm/analysis, fsm/separate, fsm/cover, fsm/minimize.
#include <gtest/gtest.h>

#include "fsm/builder.hpp"
#include "fsm/cover.hpp"
#include "fsm/minimize.hpp"
#include "fsm/separate.hpp"

namespace cfsmdiag {
namespace {

/// Three-state machine where s1 and s2 are equivalent but s0 is not (it
/// answers 'a' with x0, the twins answer with x1):
///   s0 -a/x0→ s1   s0 -b/y→ s2
///   s1 -a/x1→ s0   s1 -b/y→ s1
///   s2 -a/x1→ s0   s2 -b/y→ s2
fsm make_mergeable(symbol_table& t) {
    fsm_builder b("M", t);
    b.external("t1", "s0", "a", "x0", "s1");
    b.external("t2", "s0", "b", "y", "s2");
    b.external("t3", "s1", "a", "x1", "s0");
    b.external("t4", "s1", "b", "y", "s1");
    b.external("t5", "s2", "a", "x1", "s0");
    b.external("t6", "s2", "b", "y", "s2");
    return b.build("s0");
}

/// Distinct-output machine: every state answers 'a' differently.
fsm make_distinct(symbol_table& t) {
    fsm_builder b("M", t);
    b.external("t1", "s0", "a", "x0", "s1");
    b.external("t2", "s1", "a", "x1", "s2");
    b.external("t3", "s2", "a", "x2", "s0");
    return b.build("s0");
}

TEST(local_view_test, external_labels_and_epsilon_totalization) {
    symbol_table t;
    fsm_builder b("M", t);
    b.external("t1", "s0", "a", "x", "s1");
    b.internal("t2", "s1", "g", "m", "s0", machine_id{1});
    const fsm m = b.build("s0");
    const local_view v(m);

    const auto ext = v.step(state_id{0}, t.lookup("a"));
    EXPECT_EQ(ext.label, t.lookup("x"));
    EXPECT_EQ(ext.next, state_id{1});

    // Internal transitions are locally silent but do move the state.
    const auto internal = v.step(state_id{1}, t.lookup("g"));
    EXPECT_TRUE(internal.label.is_epsilon());
    EXPECT_EQ(internal.next, state_id{0});

    // Unspecified input: ε label, state unchanged.
    const auto missing = v.step(state_id{1}, t.lookup("a"));
    EXPECT_TRUE(missing.label.is_epsilon());
    EXPECT_EQ(missing.next, state_id{1});
}

TEST(local_view_test, run_concatenates_labels) {
    symbol_table t;
    const fsm m = make_distinct(t);
    const local_view v(m);
    const auto labels =
        v.run(state_id{0}, {t.lookup("a"), t.lookup("a"), t.lookup("a")});
    ASSERT_EQ(labels.size(), 3u);
    EXPECT_EQ(labels[0], t.lookup("x0"));
    EXPECT_EQ(labels[1], t.lookup("x1"));
    EXPECT_EQ(labels[2], t.lookup("x2"));
}

TEST(equivalence_test, merges_equivalent_states_only) {
    symbol_table t;
    const fsm m = make_mergeable(t);
    const local_view v(m);
    const auto cls = equivalence_classes(v);
    EXPECT_NE(cls[0], cls[1]);
    EXPECT_EQ(cls[1], cls[2]);
    EXPECT_TRUE(locally_distinguishable(v, state_id{0}, state_id{1}));
    EXPECT_FALSE(locally_distinguishable(v, state_id{1}, state_id{2}));
    EXPECT_FALSE(is_reduced(m));
}

TEST(equivalence_test, distinct_machine_is_reduced) {
    symbol_table t;
    const fsm m = make_distinct(t);
    EXPECT_TRUE(is_reduced(m));
}

TEST(reachability_test, detects_unreachable_states) {
    symbol_table t;
    fsm_builder b("M", t);
    b.external("t1", "s0", "a", "x", "s0");
    b.state("orphan");
    const fsm m = b.build("s0");
    const auto seen = reachable_states(m);
    EXPECT_TRUE(seen[0]);
    EXPECT_FALSE(seen[1]);
    EXPECT_FALSE(is_initially_connected(m));
}

TEST(completeness_test, distinguishes_partial_machines) {
    symbol_table t;
    const fsm complete = make_distinct(t);
    EXPECT_TRUE(is_complete(complete));

    symbol_table t2;
    fsm_builder b("M", t2);
    b.external("t1", "s0", "a", "x", "s1");
    b.external("t2", "s1", "b", "y", "s0");
    const fsm partial = b.build("s0");
    EXPECT_FALSE(is_complete(partial));
}

TEST(separating_sequence_test, finds_shortest_separator) {
    symbol_table t;
    const fsm m = make_distinct(t);
    const local_view v(m);
    const auto seq = separating_sequence(v, state_id{0}, state_id{1});
    ASSERT_TRUE(seq.has_value());
    EXPECT_EQ(seq->size(), 1u);  // 'a' already differs
    EXPECT_EQ(v.run(state_id{0}, *seq), v.run(state_id{0}, *seq));
    EXPECT_NE(v.run(state_id{0}, *seq), v.run(state_id{1}, *seq));
}

TEST(separating_sequence_test, equivalent_states_are_not_separable) {
    symbol_table t;
    const fsm m = make_mergeable(t);
    const local_view v(m);
    EXPECT_FALSE(separating_sequence(v, state_id{1}, state_id{2})
                     .has_value());
    EXPECT_FALSE(separating_sequence(v, state_id{0}, state_id{0})
                     .has_value());
}

TEST(separating_sequence_test, multi_step_separator) {
    // s0 and s1 agree on the first output but reach states that disagree.
    symbol_table t;
    fsm_builder b("M", t);
    b.state("s0").state("s1").state("s2").state("s3");
    b.external("t1", "s0", "a", "x", "s2");
    b.external("t2", "s1", "a", "x", "s3");
    b.external("t3", "s2", "a", "p", "s2");
    b.external("t4", "s3", "a", "q", "s3");
    const fsm m = b.build("s0");
    const local_view v(m);
    const auto seq = separating_sequence(v, state_id{0}, state_id{1});
    ASSERT_TRUE(seq.has_value());
    EXPECT_EQ(seq->size(), 2u);
}

TEST(characterization_set_test, separates_every_state_pair) {
    symbol_table t;
    const fsm m = make_distinct(t);
    const local_view v(m);
    const auto w = characterization_set(v);
    ASSERT_FALSE(w.empty());
    for (std::uint32_t i = 0; i < 3; ++i) {
        for (std::uint32_t j = i + 1; j < 3; ++j) {
            bool separated = false;
            for (const auto& seq : w) {
                if (v.run(state_id{i}, seq) != v.run(state_id{j}, seq))
                    separated = true;
            }
            EXPECT_TRUE(separated) << "pair " << i << "," << j;
        }
    }
}

TEST(limited_w_test, covers_only_requested_states) {
    symbol_table t;
    const fsm m = make_mergeable(t);
    const local_view v(m);
    // s0 vs s1 are separable; s1 vs s2 are not.
    const auto r1 = limited_characterization_set(
        v, {state_id{0}, state_id{1}});
    EXPECT_FALSE(r1.sequences.empty());
    EXPECT_TRUE(r1.indistinguishable.empty());

    const auto r2 = limited_characterization_set(
        v, {state_id{1}, state_id{2}});
    EXPECT_TRUE(r2.sequences.empty());
    ASSERT_EQ(r2.indistinguishable.size(), 1u);
}

TEST(uio_test, exists_for_distinct_machine) {
    symbol_table t;
    const fsm m = make_distinct(t);
    const local_view v(m);
    for (std::uint32_t s = 0; s < 3; ++s) {
        const auto uio = uio_sequence(v, state_id{s});
        ASSERT_TRUE(uio.has_value()) << "state " << s;
        // Check uniqueness: no other state produces the same labels.
        for (std::uint32_t o = 0; o < 3; ++o) {
            if (o == s) continue;
            EXPECT_NE(v.run(state_id{s}, *uio), v.run(state_id{o}, *uio));
        }
    }
}

TEST(uio_test, absent_for_merged_states) {
    symbol_table t;
    const fsm m = make_mergeable(t);
    const local_view v(m);
    EXPECT_FALSE(uio_sequence(v, state_id{1}).has_value());
}

TEST(transfer_sequence_test, shortest_path_and_avoidance) {
    symbol_table t;
    fsm_builder b("M", t);
    b.external("t1", "s0", "a", "x", "s1");   // direct hop
    b.external("t2", "s0", "b", "x", "s2");   // detour…
    b.external("t3", "s2", "b", "x", "s1");   // …to s1
    const fsm m = b.build("s0");

    const auto direct = transfer_sequence(m, state_id{0}, state_id{1});
    ASSERT_TRUE(direct.has_value());
    EXPECT_EQ(direct->size(), 1u);

    // Forbid t1: the detour is the only way.
    const auto detour =
        transfer_sequence(m, state_id{0}, state_id{1}, {transition_id{0}});
    ASSERT_TRUE(detour.has_value());
    EXPECT_EQ(detour->size(), 2u);

    // Forbid everything into s1.
    const auto none = transfer_sequence(
        m, state_id{0}, state_id{1}, {transition_id{0}, transition_id{2}});
    EXPECT_FALSE(none.has_value());

    const auto self = transfer_sequence(m, state_id{1}, state_id{1});
    ASSERT_TRUE(self.has_value());
    EXPECT_TRUE(self->empty());
}

TEST(state_cover_test, reaches_all_reachable_states) {
    symbol_table t;
    const fsm m = make_distinct(t);
    const auto cover = state_cover(m);
    ASSERT_EQ(cover.size(), 3u);
    EXPECT_EQ(cover[0]->size(), 0u);
    EXPECT_EQ(cover[1]->size(), 1u);
    EXPECT_EQ(cover[2]->size(), 2u);
}

TEST(transition_cover_test, one_sequence_per_transition) {
    symbol_table t;
    const fsm m = make_distinct(t);
    const auto cover = transition_cover(m);
    EXPECT_EQ(cover.sequences.size(), 3u);
    EXPECT_TRUE(cover.unreachable.empty());
    for (const auto& [tid, seq] : cover.sequences) {
        // Last input must be the covered transition's input.
        EXPECT_EQ(seq.back(), m.at(tid).input);
    }
}

TEST(minimize_test, merges_equivalent_and_preserves_behaviour) {
    symbol_table t;
    const fsm m = make_mergeable(t);
    const auto result = minimize(m);
    EXPECT_EQ(result.machine.state_count(), 2u);
    EXPECT_EQ(result.state_map[1], result.state_map[2]);

    // Behaviour preserved on a few sequences.
    const local_view before(m);
    const local_view after(result.machine);
    const std::vector<std::vector<std::string>> seqs{
        {"a", "b", "a"}, {"b", "b", "a"}, {"a", "a", "b", "b"}};
    for (const auto& raw : seqs) {
        std::vector<symbol> seq;
        for (const auto& s : raw) seq.push_back(t.lookup(s));
        EXPECT_EQ(before.run(m.initial_state(), seq),
                  after.run(result.machine.initial_state(), seq));
    }
}

TEST(minimize_test, drops_unreachable_states) {
    symbol_table t;
    fsm_builder b("M", t);
    b.external("t1", "s0", "a", "x", "s0");
    b.state("orphan");
    const fsm m = b.build("s0");
    const auto result = minimize(m);
    EXPECT_EQ(result.machine.state_count(), 1u);
}

}  // namespace
}  // namespace cfsmdiag
