// Unit tests for fsm/symbol, fsm/fsm, fsm/builder.
#include <gtest/gtest.h>

#include "fsm/builder.hpp"
#include "fsm/dot.hpp"

namespace cfsmdiag {
namespace {

TEST(symbol_table_test, epsilon_is_reserved_and_renders_as_dash) {
    symbol_table t;
    EXPECT_TRUE(symbol::epsilon().is_epsilon());
    EXPECT_EQ(t.name(symbol::epsilon()), "-");
    EXPECT_EQ(t.lookup("-"), symbol::epsilon());
    EXPECT_EQ(t.lookup("ε"), symbol::epsilon());
}

TEST(symbol_table_test, intern_is_idempotent) {
    symbol_table t;
    const symbol a1 = t.intern("a");
    const symbol a2 = t.intern("a");
    const symbol b = t.intern("b");
    EXPECT_EQ(a1, a2);
    EXPECT_NE(a1, b);
    EXPECT_EQ(t.name(a1), "a");
    EXPECT_EQ(t.name(b), "b");
}

TEST(symbol_table_test, lookup_unknown_throws) {
    symbol_table t;
    EXPECT_THROW((void)t.lookup("nope"), error);
    EXPECT_FALSE(t.contains("nope"));
    (void)t.intern("yep");
    EXPECT_TRUE(t.contains("yep"));
}

TEST(symbol_table_test, empty_spelling_rejected) {
    symbol_table t;
    EXPECT_THROW((void)t.intern(""), error);
}

TEST(fsm_builder_test, builds_states_and_transitions) {
    symbol_table t;
    fsm_builder b("M", t);
    b.external("t1", "s0", "a", "x", "s1");
    b.external("t2", "s1", "a", "y", "s0");
    b.internal("t3", "s0", "g", "m", "s1", machine_id{1});
    const fsm m = b.build("s0");

    EXPECT_EQ(m.name(), "M");
    EXPECT_EQ(m.state_count(), 2u);
    EXPECT_EQ(m.initial_state(), b.id_of("s0"));
    ASSERT_EQ(m.transitions().size(), 3u);
    EXPECT_EQ(m.transitions()[2].kind, output_kind::internal);
    EXPECT_EQ(m.transitions()[2].destination, machine_id{1});
    EXPECT_EQ(m.state_name(state_id{1}), "s1");
}

TEST(fsm_builder_test, find_is_the_partial_transition_function) {
    symbol_table t;
    fsm_builder b("M", t);
    b.external("t1", "s0", "a", "x", "s1");
    const fsm m = b.build("s0");

    const auto hit = m.find(state_id{0}, t.lookup("a"));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(m.at(*hit).name, "t1");
    EXPECT_FALSE(m.find(state_id{1}, t.lookup("a")).has_value());
}

TEST(fsm_builder_test, nondeterminism_is_rejected) {
    symbol_table t;
    fsm_builder b("M", t);
    b.external("t1", "s0", "a", "x", "s1");
    b.external("t2", "s0", "a", "y", "s0");
    EXPECT_THROW((void)b.build("s0"), error);
}

TEST(fsm_builder_test, unknown_initial_state_rejected) {
    symbol_table t;
    fsm_builder b("M", t);
    b.external("t1", "s0", "a", "x", "s1");
    EXPECT_THROW((void)b.build("nope"), error);
}

TEST(fsm_builder_test, epsilon_input_rejected) {
    symbol_table t;
    fsm_builder b("M", t);
    b.external("t1", "s0", "-", "x", "s1");
    EXPECT_THROW((void)b.build("s0"), error);
}

TEST(fsm_builder_test, epsilon_output_allowed_for_external) {
    symbol_table t;
    fsm_builder b("M", t);
    b.external("t1", "s0", "a", "-", "s1");
    const fsm m = b.build("s0");
    EXPECT_TRUE(m.transitions()[0].output.is_epsilon());
}

TEST(fsm_test, with_transition_replaced_changes_only_the_target) {
    symbol_table t;
    fsm_builder b("M", t);
    b.external("t1", "s0", "a", "x", "s1");
    b.external("t2", "s1", "a", "y", "s0");
    const fsm m = b.build("s0");

    const fsm mutated = m.with_transition_replaced(
        transition_id{0}, t.intern("z"), state_id{0});
    EXPECT_EQ(mutated.transitions()[0].output, t.lookup("z"));
    EXPECT_EQ(mutated.transitions()[0].to, state_id{0});
    EXPECT_EQ(mutated.transitions()[1].output, t.lookup("y"));
    // Original untouched.
    EXPECT_EQ(m.transitions()[0].output, t.lookup("x"));
}

TEST(fsm_test, with_transition_replaced_validates_range) {
    symbol_table t;
    fsm_builder b("M", t);
    b.external("t1", "s0", "a", "x", "s0");
    const fsm m = b.build("s0");
    EXPECT_THROW((void)m.with_transition_replaced(transition_id{7},
                                                  std::nullopt, state_id{0}),
                 error);
    EXPECT_THROW((void)m.with_transition_replaced(transition_id{0},
                                                  std::nullopt, state_id{9}),
                 error);
}

TEST(fsm_test, input_alphabet_and_inputs_from) {
    symbol_table t;
    fsm_builder b("M", t);
    b.external("t1", "s0", "a", "x", "s1");
    b.external("t2", "s0", "b", "x", "s0");
    b.external("t3", "s1", "a", "y", "s0");
    const fsm m = b.build("s0");

    EXPECT_EQ(m.input_alphabet().size(), 2u);
    EXPECT_EQ(m.inputs_from(state_id{0}).size(), 2u);
    EXPECT_EQ(m.inputs_from(state_id{1}).size(), 1u);
}

TEST(fsm_test, default_transition_names_are_generated) {
    symbol_table t;
    std::vector<transition> ts(1);
    ts[0].from = state_id{0};
    ts[0].to = state_id{0};
    ts[0].input = t.intern("a");
    ts[0].output = t.intern("x");
    const fsm m("M", {"s0"}, state_id{0}, std::move(ts));
    EXPECT_EQ(m.transitions()[0].name, "t1");
}

TEST(dot_test, renders_states_edges_and_internal_style) {
    symbol_table t;
    fsm_builder b("M", t);
    b.external("t1", "s0", "a", "x", "s1");
    b.internal("t2", "s1", "g", "m", "s0", machine_id{2});
    const fsm m = b.build("s0");
    const std::string dot = to_dot(m, t);
    EXPECT_NE(dot.find("digraph \"M\""), std::string::npos);
    EXPECT_NE(dot.find("t1: a/x"), std::string::npos);
    EXPECT_NE(dot.find("=> M3"), std::string::npos);
    EXPECT_NE(dot.find("style=bold"), std::string::npos);
}

}  // namespace
}  // namespace cfsmdiag
