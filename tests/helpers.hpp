// Shared fixtures for the unit tests: a small two-machine system and
// shortcuts for building inputs/observations.
#pragma once

#include <string>
#include <vector>

#include "cfsmdiag.hpp"

namespace cfsmdiag::testing_helpers {

/// Two machines, fully hand-checkable:
///   A (port 1, states p0 p1):
///     a1 p0 -x/ok→ p1        a2 p1 -x/ok2→ p0
///     a3 p0 -send/msg1⇒B → p0   a4 p1 -send/msg2⇒B → p1
///   B (port 2, states q0 q1):
///     b1 q0 -msg1/r1→ q1     b2 q0 -msg2/r2→ q0
///     b3 q1 -msg1/r2→ q0     b4 q1 -msg2/r1→ q1
///     b5 q0 -y/r1→ q1
inline system make_pair_system() {
    symbol_table symbols;
    const machine_id b{1};
    fsm_builder ba("A", symbols);
    ba.external("a1", "p0", "x", "ok", "p1");
    ba.external("a2", "p1", "x", "ok2", "p0");
    ba.internal("a3", "p0", "send", "msg1", "p0", b);
    ba.internal("a4", "p1", "send", "msg2", "p1", b);
    fsm_builder bb("B", symbols);
    bb.external("b1", "q0", "msg1", "r1", "q1");
    bb.external("b2", "q0", "msg2", "r2", "q0");
    bb.external("b3", "q1", "msg1", "r2", "q0");
    bb.external("b4", "q1", "msg2", "r1", "q1");
    bb.external("b5", "q0", "y", "r1", "q1");
    std::vector<fsm> machines;
    machines.push_back(ba.build("p0"));
    machines.push_back(bb.build("q0"));
    return system("pair", std::move(symbols), std::move(machines));
}

/// Input at a port by spelling.
inline global_input in(const system& sys, std::uint32_t port_1based,
                       const std::string& sym) {
    return global_input::at(machine_id{port_1based - 1},
                            sys.symbols().lookup(sym));
}

/// Expected observation at a port by spelling.
inline observation at(const system& sys, std::uint32_t port_1based,
                      const std::string& sym) {
    return observation::at(machine_id{port_1based - 1},
                           sys.symbols().lookup(sym));
}

/// Finds a transition id by display name.
inline global_transition_id tid(const system& sys, std::uint32_t machine,
                                const std::string& name) {
    const machine_id m{machine};
    const fsm& f = sys.machine(m);
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(f.transitions().size()); ++i) {
        if (f.transitions()[i].name == name) return {m, transition_id{i}};
    }
    throw error("tid: no transition named " + name);
}

/// Renders observations compactly for EXPECT_EQ diffs.
inline std::string render(const system& sys,
                          const std::vector<observation>& obs) {
    std::vector<std::string> cells;
    for (const auto& o : obs) cells.push_back(to_string(o, sys.symbols()));
    return join(cells, ", ");
}

}  // namespace cfsmdiag::testing_helpers
