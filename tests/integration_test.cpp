// Cross-module integration and property tests: witnesses, product
// minimization, io round-trips over random systems, coordinated-vs-direct
// diagnosis equality, parser robustness.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "tester/coordinator.hpp"

namespace cfsmdiag {
namespace {

using testing_helpers::make_pair_system;
using testing_helpers::tid;

TEST(witness_test_suite, demonstrates_every_detectable_paper_fault) {
    const auto ex = paperex::make_paper_example();
    auto faults = enumerate_all_faults(ex.spec);
    std::size_t demonstrated = 0;
    for (std::size_t i = 0; i < faults.size(); i += 4) {
        const auto w = witness_test(ex.spec, faults[i]);
        if (!w) continue;  // equivalent mutant
        ++demonstrated;
        SCOPED_TRACE(describe(ex.spec, faults[i]));
        EXPECT_NE(w->expected, w->faulty);
        ASSERT_LT(w->divergence, w->expected.size());
        EXPECT_NE(w->expected[w->divergence], w->faulty[w->divergence]);
        // All steps before the divergence agree.
        for (std::size_t k = 0; k < w->divergence; ++k)
            EXPECT_EQ(w->expected[k], w->faulty[k]);
        // The witness is minimal-ish: it is reset-prefixed and ends at or
        // after the divergence.
        EXPECT_EQ(w->tc.inputs.front().action, global_input::kind::reset);
        EXPECT_GE(w->tc.inputs.size(), w->divergence + 1);
        // And the real IUT reproduces the faulty side.
        simulated_iut iut(ex.spec, faults[i]);
        EXPECT_EQ(iut.execute(w->tc.inputs), w->faulty);
    }
    EXPECT_GT(demonstrated, 10u);
}

TEST(witness_test_suite, describe_mentions_divergence) {
    const auto ex = paperex::make_paper_example();
    const auto w = witness_test(ex.spec, ex.fault);
    ASSERT_TRUE(w.has_value());
    const std::string text = w->describe(ex.spec);
    EXPECT_NE(text.find("witness:"), std::string::npos);
    EXPECT_NE(text.find("first divergence"), std::string::npos);
}

TEST(product_test, minimized_product_preserves_local_behaviour) {
    for (const auto& [name, sys] : models::all_models()) {
        SCOPED_TRACE(name);
        const composition comp = compose(sys);
        const auto min = minimize(comp.machine);
        EXPECT_LE(min.machine.state_count(), comp.machine.state_count());
        // Random probing: label sequences must agree.
        const local_view before(comp.machine);
        const local_view after(min.machine);
        rng random(99);
        for (int rep = 0; rep < 30; ++rep) {
            std::vector<symbol> seq;
            for (int k = 0; k < 10; ++k)
                seq.push_back(random.pick(before.inputs()));
            EXPECT_EQ(before.run(comp.machine.initial_state(), seq),
                      after.run(min.machine.initial_state(), seq));
        }
    }
}

TEST(io_property, random_systems_round_trip_equivalently) {
    for (std::uint64_t seed : {21ull, 22ull, 23ull, 24ull}) {
        rng random(seed);
        random_system_options opts;
        opts.machines = 3;
        opts.states_per_machine = 3;
        const system sys = random_system(opts, random);
        const system parsed = parse_system(write_system(sys));
        EXPECT_TRUE(systems_equivalent(sys, parsed).equivalent)
            << "seed " << seed;
    }
}

TEST(io_property, parser_rejects_mutated_inputs_gracefully) {
    // Random single-character corruption of a valid file must either
    // parse (cosmetic change) or throw cfsmdiag::error — never crash.
    const std::string good = write_system(make_pair_system());
    rng random(7);
    for (int rep = 0; rep < 200; ++rep) {
        std::string bad = good;
        const std::size_t pos = random.index(bad.size());
        bad[pos] = static_cast<char>(random.between(32, 126));
        try {
            const system parsed = parse_system(bad);
            (void)parsed.machine_count();
        } catch (const error&) {
            // expected for most corruptions
        }
    }
    SUCCEED();
}

TEST(coordination_property, coordinated_diagnosis_equals_direct) {
    // Running the diagnoser through the distributed architecture must give
    // the same verdicts as direct simulator access.
    const system sys = make_pair_system();
    const auto suite = transition_tour(sys).suite;
    auto faults = enumerate_all_faults(sys);
    std::size_t compared = 0;
    for (std::size_t i = 0; i < faults.size(); i += 4) {
        simulated_iut direct(sys, faults[i]);
        const auto a = diagnose(sys, suite, direct);

        simulator_sut sut(sys, faults[i]);
        coordinated_oracle coordinated(sut);
        const auto b = diagnose(sys, suite, coordinated);

        SCOPED_TRACE(describe(sys, faults[i]));
        EXPECT_EQ(a.outcome, b.outcome);
        EXPECT_EQ(a.final_diagnoses, b.final_diagnoses);
        ++compared;
    }
    EXPECT_GT(compared, 5u);
}

TEST(end_to_end, file_based_workflow) {
    // write → parse → generate → diagnose, all through the text layer,
    // mirroring what the CLI does.
    const auto ex = paperex::make_paper_example();
    const std::string sys_text = write_system(ex.spec);
    const system sys = parse_system(sys_text);
    const std::string suite_text =
        write_suite(ex.suite, ex.spec.symbols());
    const test_suite suite = parse_suite(suite_text, sys.symbols());
    const auto fault =
        parse_fault(write_fault(ex.spec, ex.fault), sys);

    simulated_iut iut(sys, fault);
    const auto result = diagnose(sys, suite, iut);
    ASSERT_TRUE(result.is_localized());
    EXPECT_EQ(sys.transition_label(result.final_diagnoses[0].target),
              "M3.t''4");
}

TEST(end_to_end, models_diagnose_through_every_suite_method) {
    const system sys = models::connection_management();
    const single_transition_fault bug{
        tid(sys, 1, "r_deliver"), sys.symbols().lookup("stale"),
        std::nullopt};
    for (auto method : {verification_method::w, verification_method::wp,
                        verification_method::uio, verification_method::ds}) {
        SCOPED_TRACE(to_string(method));
        const auto suite = per_machine_method_suite(sys, method).suite;
        simulated_iut iut(sys, bug);
        const auto result = diagnose(sys, suite, iut);
        ASSERT_TRUE(result.is_localized());
        EXPECT_EQ(result.final_diagnoses[0], bug);
    }
}

}  // namespace
}  // namespace cfsmdiag
