// Algebraic invariants of the diagnostic pipeline, checked across systems
// and fault samples (TEST_P sweeps).  These are the lemmas the paper's
// correctness argument rests on, verified mechanically:
//
//  I1. Before the first symptom, IUT and spec observations agree (by
//      definition of "first").
//  I2. The faulty transition is in every symptomatic conflict set of its
//      machine, hence in its machine's ITC.
//  I3. The true hypothesis replays consistently (mutation replay accepts
//      the truth).
//  I4. Complete evaluation therefore lists the truth among its diagnoses.
//  I5. The ust, when defined, fires in the spec run at or before the
//      first symptom of every symptomatic case.
//  I6. Additional tests never increase the live set, and the truth
//      survives every one of them.
#include <gtest/gtest.h>

#include "helpers.hpp"

namespace cfsmdiag {
namespace {

struct invariant_config {
    std::string name;
    int source = 0;  // 0 = pair, 1..3 = models, >=10 random seed
};

std::ostream& operator<<(std::ostream& os, const invariant_config& c) {
    return os << c.name;
}

class invariants : public ::testing::TestWithParam<invariant_config> {
  protected:
    [[nodiscard]] system make() const {
        const auto& cfg = GetParam();
        switch (cfg.source) {
            case 0: return testing_helpers::make_pair_system();
            case 1: return models::alternating_bit();
            case 2: return models::connection_management();
            case 3: return models::token_ring3();
            default: {
                rng random(static_cast<std::uint64_t>(cfg.source));
                random_system_options opts;
                opts.machines = 2 + cfg.source % 3;
                opts.states_per_machine = 3 + cfg.source % 2;
                return random_system(opts, random);
            }
        }
    }
};

TEST_P(invariants, pipeline_lemmas_hold_for_every_detected_fault) {
    const system sys = make();
    test_suite suite = transition_tour(sys).suite;
    rng wr(42);
    suite.extend(random_walk_suite(sys, wr,
                                   {.cases = 3, .steps_per_case = 10}));

    auto faults = enumerate_all_faults(sys);
    std::size_t stride = std::max<std::size_t>(1, faults.size() / 40);
    std::size_t checked = 0;

    for (std::size_t fi = 0; fi < faults.size(); fi += stride) {
        const auto& truth = faults[fi];
        simulated_iut iut(sys, truth);
        const auto report = collect_symptoms(sys, suite, iut);
        if (!report.has_symptoms()) continue;
        ++checked;
        SCOPED_TRACE(describe(sys, truth));

        // I1: agreement before the first symptom.
        for (std::size_t ci : report.symptomatic_cases) {
            const auto& run = report.runs[ci];
            for (std::size_t k = 0; k < *run.first_symptom; ++k) {
                ASSERT_EQ(run.trace[k].expected, run.observed[k]);
            }
        }

        // I2: truth's transition in every symptomatic conflict set of its
        // machine, hence in the ITC.
        const auto confl = generate_conflict_sets(sys, report);
        const auto m = truth.target.machine.value;
        for (const auto& set : confl.per_machine[m]) {
            EXPECT_TRUE(set.count(truth.target.transition) != 0);
        }
        const auto cands = generate_candidates(sys, report, confl);
        EXPECT_TRUE(std::binary_search(cands.itc[m].begin(),
                                       cands.itc[m].end(),
                                       truth.target.transition));

        // I3: mutation replay accepts the truth.
        EXPECT_TRUE(hypothesis_consistent(sys, suite, report,
                                          truth.to_override()));

        // I4: complete evaluation lists the truth.
        const auto dc =
            evaluate_candidates_escalated(sys, suite, report, cands);
        const auto diagnoses = dc.diagnoses();
        EXPECT_NE(std::find(diagnoses.begin(), diagnoses.end(), truth),
                  diagnoses.end());

        // I5: the ust fires at or before every first symptom.
        if (report.ust) {
            for (std::size_t ci : report.symptomatic_cases) {
                const auto& run = report.runs[ci];
                bool fired = false;
                for (std::size_t k = 0;
                     k <= *run.first_symptom && !fired; ++k) {
                    for (auto g : run.trace[k].fired)
                        fired = fired || g == *report.ust;
                }
                EXPECT_TRUE(fired);
            }
        }
    }
    EXPECT_GT(checked, 3u) << "sample produced too few detected faults";
}

TEST_P(invariants, additional_tests_shrink_and_keep_truth) {
    const system sys = make();
    const test_suite suite = transition_tour(sys).suite;
    auto faults = enumerate_all_faults(sys);
    std::size_t stride = std::max<std::size_t>(1, faults.size() / 15);
    std::size_t checked = 0;

    for (std::size_t fi = 0; fi < faults.size(); fi += stride) {
        const auto& truth = faults[fi];
        simulated_iut iut(sys, truth);
        const auto result = diagnose(sys, suite, iut);
        if (result.outcome == diagnosis_outcome::passed) continue;
        ++checked;
        SCOPED_TRACE(describe(sys, truth));

        // I6a: every applied test eliminated at least one hypothesis (the
        // diagnoser only applies splitting tests; a split plus filtering
        // kills someone) … except fallback re-checks, which still must not
        // grow the set.
        std::size_t live = result.initial_diagnoses.size();
        for (const auto& rec : result.additional_tests) {
            EXPECT_LE(rec.eliminated, live);
            EXPECT_GE(rec.eliminated, 1u) << rec.purpose;
            live -= rec.eliminated;
        }
        EXPECT_EQ(live, result.final_diagnoses.size());

        // I6b: the truth (or an observational twin) survived.
        bool sound = false;
        for (const auto& d : result.final_diagnoses) {
            sound = sound || observationally_equivalent(sys, truth, d);
        }
        EXPECT_TRUE(sound);
    }
    EXPECT_GT(checked, 2u);
}

INSTANTIATE_TEST_SUITE_P(
    systems, invariants,
    ::testing::Values(invariant_config{"pair", 0},
                      invariant_config{"abp", 1},
                      invariant_config{"connmgmt", 2},
                      invariant_config{"ring", 3},
                      invariant_config{"rand_a", 11},
                      invariant_config{"rand_b", 12},
                      invariant_config{"rand_c", 13}),
    [](const ::testing::TestParamInfo<invariant_config>& info) {
        return info.param.name;
    });

}  // namespace
}  // namespace cfsmdiag
