// Unit tests for io/text_format: round trips and error reporting.
#include <gtest/gtest.h>

#include "helpers.hpp"

namespace cfsmdiag {
namespace {

using testing_helpers::make_pair_system;
using testing_helpers::tid;

TEST(io_system_test, write_then_parse_is_identity) {
    const system original = make_pair_system();
    const std::string text = write_system(original);
    const system parsed = parse_system(text);

    ASSERT_EQ(parsed.machine_count(), original.machine_count());
    EXPECT_EQ(parsed.name(), original.name());
    for (std::uint32_t mi = 0; mi < original.machine_count(); ++mi) {
        const fsm& a = original.machine(machine_id{mi});
        const fsm& b = parsed.machine(machine_id{mi});
        EXPECT_EQ(a.name(), b.name());
        EXPECT_EQ(a.state_count(), b.state_count());
        ASSERT_EQ(a.transitions().size(), b.transitions().size());
        for (std::size_t ti = 0; ti < a.transitions().size(); ++ti) {
            const transition& ta = a.transitions()[ti];
            const transition& tb = b.transitions()[ti];
            EXPECT_EQ(ta.name, tb.name);
            EXPECT_EQ(a.state_name(ta.from), b.state_name(tb.from));
            EXPECT_EQ(a.state_name(ta.to), b.state_name(tb.to));
            EXPECT_EQ(original.symbols().name(ta.input),
                      parsed.symbols().name(tb.input));
            EXPECT_EQ(original.symbols().name(ta.output),
                      parsed.symbols().name(tb.output));
            EXPECT_EQ(ta.kind, tb.kind);
            if (ta.kind == output_kind::internal) {
                EXPECT_EQ(ta.destination, tb.destination);
            }
        }
    }
    // And the round-tripped system behaves identically.
    const auto tour = transition_tour(original).suite;
    for (const auto& tc : tour.cases)
        EXPECT_EQ(observe(original, tc.inputs), observe(parsed, tc.inputs));
}

TEST(io_system_test, paper_example_round_trips) {
    const auto ex = paperex::make_paper_example();
    const system parsed = parse_system(write_system(ex.spec));
    EXPECT_TRUE(check_structure(parsed).empty());
    for (const auto& tc : ex.suite.cases) {
        // Re-parse the suite against the new symbol table and compare
        // behaviours.
        const auto suite2 = parse_suite(
            write_suite(ex.suite, ex.spec.symbols()), parsed.symbols());
        for (std::size_t i = 0; i < suite2.cases.size(); ++i) {
            const auto a =
                observe(ex.spec, ex.suite.cases[i].inputs);
            const auto b = observe(parsed, suite2.cases[i].inputs);
            ASSERT_EQ(a.size(), b.size());
            for (std::size_t k = 0; k < a.size(); ++k) {
                EXPECT_EQ(to_string(a[k], ex.spec.symbols()),
                          to_string(b[k], parsed.symbols()));
            }
        }
        (void)tc;
    }
}

TEST(io_system_test, comments_and_blank_lines_ignored) {
    const std::string text = R"(
# a comment
system demo

machine A initial s0
  t1: s0  a / x -> s0    # trailing comment
end
)";
    const system sys = parse_system(text);
    EXPECT_EQ(sys.name(), "demo");
    EXPECT_EQ(sys.machine(machine_id{0}).transitions().size(), 1u);
}

TEST(io_system_test, parse_errors_carry_line_numbers) {
    auto expect_error = [](const std::string& text,
                           const std::string& needle) {
        try {
            (void)parse_system(text);
            FAIL() << "expected parse error for: " << text;
        } catch (const error& e) {
            EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
                << e.what();
        }
    };
    expect_error("machine A initial s0\n t1: s0 a / x -> s0\n",
                 "missing final 'end'");
    expect_error("t1: s0 a / x -> s0\n", "outside a machine block");
    expect_error("machine A initial s0\nmachine B initial q0\nend\n",
                 "missing 'end'");
    expect_error("machine A initial s0\n  broken line here\nend\n",
                 "expected:");
    expect_error(
        "machine A initial s0\n  t1: s0 a / x -> s0 => Nope\nend\n",
        "unknown machine");
    expect_error("system x\n", "no machines");
}

TEST(io_system_test, parse_errors_are_model_errors_with_position) {
    // Malformed input is a model problem, not a generic failure: the parser
    // promises model_error carrying "line L, column C".
    auto expect_position = [](const std::string& text,
                              const std::string& line_needle,
                              const std::string& column_needle) {
        try {
            (void)parse_system(text);
            FAIL() << "expected model_error for: " << text;
        } catch (const model_error& e) {
            const std::string msg = e.what();
            EXPECT_NE(msg.find(line_needle), std::string::npos) << msg;
            EXPECT_NE(msg.find(column_needle), std::string::npos) << msg;
        }
    };
    expect_position("system demo\nmachine A initial s0\n  broken\nend\n",
                    "line 3", "column 3");
    expect_position("t1: s0 a / x -> s0\n", "line 1", "column 1");
    expect_position("system demo\nmachine A initial s0\n"
                    "  t1: s0 a / x -> s0 => Nope\nend\n",
                    "line 3", "column");
    // Builder-level errors (duplicate transition name) are wrapped with
    // the offending line's position too.
    expect_position("system demo\nmachine A initial s0\n"
                    "  t1: s0 a / x -> s0\n  t1: s0 b / x -> s0\nend\n",
                    "line 4", "column 3");
}

TEST(io_system_test, malformed_corpus_always_throws_model_error) {
    const std::vector<std::string> corpus{
        "",
        "\n\n\n",
        "garbage tokens everywhere\n",
        "system\n",
        "machine\n",
        "machine A\n",
        "system demo\nmachine A initial s0\n"
        "  t1: s0 a / x -> s0 extra junk\nend\n",
        "system demo\nmachine A initial s0\n  t1: s0 a / x\nend\n",
        "system demo\nmachine A initial s0\n  t1: s0 a x -> s0\nend\n",
        "system demo\nmachine A initial s0\n  t1: s0 a / x -> s0 =>\nend\n",
        "system demo\nmachine A initial s0\n"
        "  t1: s0 a / x -> s0\n  t2: s0 a / y -> s1\nend\n",
        "system demo\nend\n",
        "\x01\x02 binary junk\n",
    };
    for (const auto& text : corpus) {
        EXPECT_THROW((void)parse_system(text), model_error) << text;
    }
}

TEST(io_suite_test, parses_both_notations) {
    const system sys = make_pair_system();
    const auto suite = parse_suite(
        "tc1: R, x@P1, send@P1\n"
        "tc2: R, x1, y2   # compact\n",
        sys.symbols());
    ASSERT_EQ(suite.size(), 2u);
    EXPECT_EQ(suite.cases[0].inputs, suite.cases[0].inputs);
    EXPECT_EQ(to_string(suite.cases[0], sys.symbols()),
              "R, x@P1, send@P1");
    EXPECT_EQ(to_string(suite.cases[1], sys.symbols()), "R, x@P1, y@P2");
}

TEST(io_suite_test, write_then_parse_round_trips) {
    const system sys = make_pair_system();
    const auto original = transition_tour(sys).suite;
    const auto parsed =
        parse_suite(write_suite(original, sys.symbols()), sys.symbols());
    ASSERT_EQ(parsed.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(parsed.cases[i].inputs, original.cases[i].inputs);
        EXPECT_EQ(parsed.cases[i].name, original.cases[i].name);
    }
}

TEST(io_suite_test, malformed_suite_reports_line_and_column) {
    const system sys = make_pair_system();
    auto expect_position = [&](const std::string& text,
                               const std::string& needle) {
        try {
            (void)parse_suite(text, sys.symbols());
            FAIL() << "expected model_error for: " << text;
        } catch (const model_error& e) {
            const std::string msg = e.what();
            EXPECT_NE(msg.find(needle), std::string::npos) << msg;
        }
    };
    expect_position("tc1 R, x1\n", "line 1");            // missing colon
    expect_position(": R, x1\n", "empty test case name");
    expect_position("tc1: R, x1\ntc2: R, zz9\n", "line 2");  // bad symbol
}

TEST(io_fault_test, malformed_fault_reports_column) {
    const system sys = make_pair_system();
    auto expect_position = [&](const std::string& text) {
        try {
            (void)parse_fault(text, sys);
            FAIL() << "expected model_error for: " << text;
        } catch (const model_error& e) {
            EXPECT_NE(std::string(e.what()).find("column"),
                      std::string::npos)
                << e.what();
        }
    };
    expect_position("");
    expect_position("A.a1 ?? p0");
    expect_position("X.a1 -> p0");
    expect_position("A.a1 -> nowhere");
    expect_position("A.a1 / nosuchsymbol");
    expect_position("A.a1 !out p0");
}

TEST(io_fault_test, round_trips_all_kinds) {
    const system sys = make_pair_system();
    const std::vector<single_transition_fault> faults{
        {tid(sys, 0, "a1"), sys.symbols().lookup("ok2"), std::nullopt},
        {tid(sys, 1, "b1"), std::nullopt, state_id{0}},
        {tid(sys, 0, "a3"), sys.symbols().lookup("msg2"), state_id{1}},
    };
    for (const auto& f : faults) {
        const std::string text = write_fault(sys, f);
        const auto parsed = parse_fault(text, sys);
        EXPECT_EQ(parsed, f) << text;
    }
}

TEST(io_fault_test, rejects_malformed_specs) {
    const system sys = make_pair_system();
    EXPECT_THROW((void)parse_fault("A.a1", sys), error);  // no fault part
    EXPECT_THROW((void)parse_fault("A.nope -> p0", sys), error);
    EXPECT_THROW((void)parse_fault("X.a1 -> p0", sys), error);
    EXPECT_THROW((void)parse_fault("A.a1 -> nowhere", sys), error);
    EXPECT_THROW((void)parse_fault("A.a1 ?? p0", sys), error);
    // A no-op "fault" (same next state) fails validation.
    EXPECT_THROW((void)parse_fault("A.a1 -> p1", sys), error);
}

}  // namespace
}  // namespace cfsmdiag
