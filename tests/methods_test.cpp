// Unit tests for fsm/distinguish (DS, identification sets) and
// testgen/methods (W/Wp/UIO/DS suites) and testgen/diagnostic_suite.
#include <gtest/gtest.h>

#include "helpers.hpp"

namespace cfsmdiag {
namespace {

using testing_helpers::make_pair_system;

/// Classic machine WITH a distinguishing sequence: outputs on 'a' differ
/// per state.
fsm make_ds_machine(symbol_table& t) {
    fsm_builder b("M", t);
    b.external("t1", "s0", "a", "x0", "s1");
    b.external("t2", "s1", "a", "x1", "s2");
    b.external("t3", "s2", "a", "x2", "s0");
    b.external("t4", "s0", "b", "y", "s0");
    b.external("t5", "s1", "b", "y", "s2");
    b.external("t6", "s2", "b", "y", "s1");
    return b.build("s0");
}

/// Machine with NO preset DS but with UIOs: on 'a' states s1,s2 merge into
/// s0 with equal outputs; separation needs different inputs per pair.
fsm make_no_ds_machine(symbol_table& t) {
    fsm_builder b("M", t);
    b.state("s0").state("s1").state("s2");
    // 'a' merges s1 and s2 into s0 with the same output — any DS starting
    // with 'a' is invalid; 'b' is a self-loop that separates s0 only;
    // 'c' separates s1 from s2 but merges s0 with s1.
    b.external("t1", "s0", "a", "ax", "s0");
    b.external("t2", "s1", "a", "am", "s0");
    b.external("t3", "s2", "a", "am", "s0");
    b.external("t4", "s0", "b", "b0", "s0");
    b.external("t5", "s1", "b", "b1", "s1");
    b.external("t6", "s2", "b", "b1", "s2");
    b.external("t7", "s0", "c", "cm", "s1");
    b.external("t8", "s1", "c", "cm", "s1");
    b.external("t9", "s2", "c", "c2", "s2");
    return b.build("s0");
}

TEST(ds_test, finds_ds_when_outputs_differ) {
    symbol_table t;
    const fsm m = make_ds_machine(t);
    const local_view view(m);
    const auto ds = preset_distinguishing_sequence(view);
    ASSERT_TRUE(ds.has_value());
    // A DS's label sequences must be pairwise distinct.
    for (std::uint32_t i = 0; i < 3; ++i) {
        for (std::uint32_t j = i + 1; j < 3; ++j) {
            EXPECT_NE(view.run(state_id{i}, *ds),
                      view.run(state_id{j}, *ds));
        }
    }
    EXPECT_EQ(ds->size(), 1u);  // 'a' alone suffices here
}

TEST(ds_test, validity_rule_rejects_merging_inputs) {
    symbol_table t;
    const fsm m = make_no_ds_machine(t);
    const local_view view(m);
    // b separates {s0} from {s1,s2} and keeps everyone in place; c then
    // separates s1 from s2 — so a DS exists: "b c"?  Check what the search
    // says and verify whatever it returns.
    const auto ds = preset_distinguishing_sequence(view);
    if (ds) {
        for (std::uint32_t i = 0; i < 3; ++i) {
            for (std::uint32_t j = i + 1; j < 3; ++j) {
                EXPECT_NE(view.run(state_id{i}, *ds),
                          view.run(state_id{j}, *ds));
            }
        }
    } else {
        // If absent, at least one pair must really be inseparable by any
        // single preset sequence of length <= 12 — spot-check pairwise
        // separability still holds (so absence is about *one* preset
        // sequence, not about distinguishability).
        EXPECT_TRUE(locally_distinguishable(view, state_id{0}, state_id{1}));
    }
}

TEST(ds_test, single_state_machine_has_empty_ds) {
    symbol_table t;
    fsm_builder b("M", t);
    b.external("t1", "s0", "a", "x", "s0");
    const fsm m = b.build("s0");
    const auto ds = preset_distinguishing_sequence(local_view(m));
    ASSERT_TRUE(ds.has_value());
    EXPECT_TRUE(ds->empty());
}

TEST(identification_set_test, separates_state_from_all_others) {
    symbol_table t;
    const fsm m = make_ds_machine(t);
    const local_view view(m);
    const auto w = characterization_set(view);
    for (std::uint32_t s = 0; s < 3; ++s) {
        const auto ident = state_identification_set(view, state_id{s}, w);
        EXPECT_TRUE(ident.uncovered.empty());
        for (std::uint32_t o = 0; o < 3; ++o) {
            if (o == s) continue;
            const bool separated = std::any_of(
                ident.sequences.begin(), ident.sequences.end(),
                [&](const auto& seq) {
                    return view.run(state_id{s}, seq) !=
                           view.run(state_id{o}, seq);
                });
            EXPECT_TRUE(separated) << s << " vs " << o;
        }
        // Identification sets should not exceed the full W.
        EXPECT_LE(ident.sequences.size(), w.size());
    }
}

class method_suite_test
    : public ::testing::TestWithParam<verification_method> {};

TEST_P(method_suite_test, detects_all_output_faults_on_pair_system) {
    const system sys = make_pair_system();
    const auto result = per_machine_method_suite(sys, GetParam());
    EXPECT_TRUE(result.unreachable.empty());
    for (const auto& f : enumerate_output_faults(sys)) {
        EXPECT_TRUE(detects(sys, result.suite, f))
            << to_string(GetParam()) << ": " << describe(sys, f);
    }
}

TEST_P(method_suite_test, detects_all_output_faults_on_random_system) {
    rng random(99);
    random_system_options opts;
    opts.machines = 3;
    opts.states_per_machine = 3;
    const system sys = random_system(opts, random);
    const auto result = per_machine_method_suite(sys, GetParam());
    for (const auto& f : enumerate_output_faults(sys)) {
        // Output faults on globally reachable transitions must be caught.
        const bool reachable = std::none_of(
            result.unreachable.begin(), result.unreachable.end(),
            [&](global_transition_id id) { return id == f.target; });
        if (!reachable) continue;
        EXPECT_TRUE(detects(sys, result.suite, f))
            << to_string(GetParam()) << ": " << describe(sys, f);
    }
}

INSTANTIATE_TEST_SUITE_P(
    methods, method_suite_test,
    ::testing::Values(verification_method::w, verification_method::wp,
                      verification_method::uio, verification_method::ds),
    [](const ::testing::TestParamInfo<verification_method>& info) {
        return to_string(info.param);
    });

TEST(method_suite_test_sizes, wp_is_no_larger_than_w) {
    const system sys = make_pair_system();
    const auto w = per_machine_method_suite(sys, verification_method::w);
    const auto wp = per_machine_method_suite(sys, verification_method::wp);
    EXPECT_LE(wp.suite.total_inputs(), w.suite.total_inputs());
}

TEST(diagnostic_suite_test, separates_spec_from_every_detectable_fault) {
    const system sys = make_pair_system();
    const auto result = apriori_diagnostic_suite(sys);
    EXPECT_FALSE(result.truncated);
    EXPECT_GT(result.hypotheses, 0u);

    for (const auto& f : enumerate_all_faults(sys)) {
        const bool detected = detects(sys, result.suite, f);
        if (!detected) {
            // Must be observationally equivalent to the spec: no splitting
            // sequence exists.
            const auto seq = splitting_sequence(
                sys, {{}, {f.to_override()}});
            EXPECT_FALSE(seq.has_value()) << describe(sys, f);
        }
    }
}

TEST(diagnostic_suite_test, localizes_without_adaptivity) {
    // After running just the a-priori suite, the consistent-hypothesis set
    // must already be a single equivalence class for every fault.
    const system sys = make_pair_system();
    const auto dx = apriori_diagnostic_suite(sys);
    auto faults = enumerate_all_faults(sys);

    for (const auto& truth : faults) {
        if (!detects(sys, dx.suite, truth)) continue;
        simulated_iut iut(sys, truth);
        diagnoser_options opts;
        opts.structured_step6 = false;
        opts.fallback_search = false;  // no adaptivity allowed
        const auto result = diagnose(sys, dx.suite, iut, opts);
        ASSERT_FALSE(result.final_diagnoses.empty())
            << describe(sys, truth);
        // All finals must be observationally equivalent to the truth.
        for (const auto& d : result.final_diagnoses) {
            EXPECT_TRUE(observationally_equivalent(sys, truth, d))
                << describe(sys, truth) << " vs " << describe(sys, d);
        }
    }
}

}  // namespace
}  // namespace cfsmdiag
