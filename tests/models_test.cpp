// Tests for the protocol model library and system-level equivalence.
#include <gtest/gtest.h>

#include "helpers.hpp"

namespace cfsmdiag {
namespace {

class model_test
    : public ::testing::TestWithParam<std::pair<std::string, int>> {};

TEST(models_test, all_models_are_valid_and_connected) {
    for (const auto& [name, sys] : models::all_models()) {
        SCOPED_TRACE(name);
        EXPECT_TRUE(check_structure(sys).empty());
        for (std::uint32_t m = 0; m < sys.machine_count(); ++m) {
            EXPECT_TRUE(is_initially_connected(sys.machine(machine_id{m})));
        }
        const auto tour = transition_tour(sys);
        EXPECT_TRUE(tour.uncovered.empty())
            << "unreachable transitions in " << name;
    }
}

TEST(models_test, campaign_soundness_over_every_model) {
    for (const auto& [name, sys] : models::all_models()) {
        SCOPED_TRACE(name);
        test_suite suite = transition_tour(sys).suite;
        rng wr(1234);
        suite.extend(random_walk_suite(sys, wr,
                                       {.cases = 4, .steps_per_case = 12}));
        auto faults = enumerate_all_faults(sys);
        if (faults.size() > 80) faults.resize(80);
        const auto stats = run_campaign(sys, suite, faults);
        EXPECT_EQ(stats.sound, stats.detected);
        EXPECT_EQ(stats.localized + stats.localized_equiv, stats.detected);
    }
}

TEST(models_test, connection_management_accept_bug_story) {
    // The classic handshake bug: the responder's accept handler sends the
    // acceptance but forgets to move to 'open' (stays 'pending'), so the
    // connection half-opens.
    const system sys = models::connection_management();
    const auto accept = testing_helpers::tid(sys, 1, "r_accept");
    const single_transition_fault bug{accept, std::nullopt,
                                      sys.machine(machine_id{1})
                                          .at(accept.transition)
                                          .from};  // stays pending
    test_suite suite = transition_tour(sys).suite;
    simulated_iut iut(sys, bug);
    const auto result = diagnose(sys, suite, iut);
    ASSERT_TRUE(result.is_localized()) << summarize(sys, result);
    EXPECT_NE(std::find(result.final_diagnoses.begin(),
                        result.final_diagnoses.end(), bug),
              result.final_diagnoses.end())
        << summarize(sys, result);
}

TEST(models_test, token_ring_wrong_destination_symbol_story) {
    // Station 2 passes a malformed token (tok12 instead of tok23 cannot be
    // expressed — the address component is fixed — but the *message type*
    // can rot within the pair alphabet only if the pair has several
    // symbols; here each pair has one, so instead break the pass
    // transition's transfer: St2 keeps believing it has the token).
    const system sys = models::token_ring3();
    const auto pass2 = testing_helpers::tid(sys, 1, "pass_St2");
    const single_transition_fault bug{pass2, std::nullopt,
                                      sys.machine(machine_id{1})
                                          .at(pass2.transition)
                                          .from};
    test_suite suite = transition_tour(sys).suite;
    simulated_iut iut(sys, bug);
    const auto result = diagnose(sys, suite, iut);
    ASSERT_TRUE(result.is_localized()) << summarize(sys, result);
    EXPECT_EQ(result.final_diagnoses[0], bug);
}

TEST(models_test, alternating_bit_matches_example_shape) {
    const system sys = models::alternating_bit();
    EXPECT_EQ(sys.machine_count(), 2u);
    EXPECT_EQ(sys.machine(machine_id{0}).transitions().size(), 8u);
    EXPECT_EQ(sys.machine(machine_id{1}).transitions().size(), 6u);
}

TEST(equivalence_test, identical_systems_are_equivalent) {
    for (const auto& [name, sys] : models::all_models()) {
        SCOPED_TRACE(name);
        const auto r = systems_equivalent(sys, sys);
        EXPECT_TRUE(r.equivalent);
        EXPECT_FALSE(r.bounded_out);
    }
}

TEST(equivalence_test, io_round_trip_preserves_behaviour) {
    for (const auto& [name, sys] : models::all_models()) {
        SCOPED_TRACE(name);
        const system parsed = parse_system(write_system(sys));
        EXPECT_TRUE(systems_equivalent(sys, parsed).equivalent);
    }
}

TEST(equivalence_test, injected_fault_yields_counterexample) {
    const system sys = models::connection_management();
    const auto deliver = testing_helpers::tid(sys, 1, "r_deliver");
    const single_transition_fault bug{
        deliver, sys.symbols().lookup("stale"), std::nullopt};
    const system mutated = inject(sys, bug);
    const auto r = systems_equivalent(sys, mutated);
    ASSERT_FALSE(r.equivalent);
    ASSERT_FALSE(r.counterexample.empty());
    // The counterexample must actually distinguish them.
    std::vector<global_input> test{global_input::reset()};
    test.insert(test.end(), r.counterexample.begin(),
                r.counterexample.end());
    EXPECT_NE(observe(sys, test), observe(mutated, test));
}

TEST(equivalence_test, equivalent_mutant_detected_as_such) {
    // A transfer fault into a twin state: build a system where two states
    // behave identically.
    symbol_table t;
    fsm_builder a("A", t);
    a.state("s0").state("s1").state("s2");
    a.external("a1", "s0", "x", "go", "s1");
    a.external("a2", "s1", "x", "loop", "s1");
    a.external("a3", "s2", "x", "loop", "s2");
    fsm_builder b("B", t);
    b.external("b1", "q0", "y", "r", "q0");
    std::vector<fsm> machines;
    machines.push_back(a.build("s0"));
    machines.push_back(b.build("q0"));
    const system sys("twin", std::move(t), std::move(machines));

    const system mutated = sys.with_transition_replaced(
        {machine_id{0}, transition_id{0}}, std::nullopt, state_id{2});
    EXPECT_TRUE(systems_equivalent(sys, mutated).equivalent);
}

TEST(equivalence_test, port_count_mismatch_throws) {
    const system two = testing_helpers::make_pair_system();
    const system three = models::token_ring3();
    EXPECT_THROW((void)systems_equivalent(two, three), error);
}

TEST(zoo_test, zoo_models_are_valid_and_connected) {
    for (const auto& [name, sys] : models::zoo_models()) {
        SCOPED_TRACE(name);
        EXPECT_TRUE(check_structure(sys).empty());
        for (std::uint32_t m = 0; m < sys.machine_count(); ++m) {
            EXPECT_TRUE(is_initially_connected(sys.machine(machine_id{m})));
        }
        const auto tour = transition_tour(sys);
        EXPECT_TRUE(tour.uncovered.empty())
            << "unreachable transitions in " << name;
    }
}

TEST(zoo_test, token_ring_generalizes_token_ring3) {
    // token_ring(3) must be the same machine structure as the fixed model
    // (only the system name differs) — the generator is a strict
    // generalization, not a near-copy.
    const std::string general = write_system(models::token_ring(3));
    const std::string fixed = write_system(models::token_ring3());
    const auto strip_header = [](const std::string& text) {
        return text.substr(text.find('\n'));
    };
    EXPECT_EQ(strip_header(general), strip_header(fixed));
}

TEST(zoo_test, families_scale_with_their_parameter) {
    EXPECT_LT(enumerate_all_faults(models::token_ring(3)).size(),
              enumerate_all_faults(models::token_ring(6)).size());
    EXPECT_LT(enumerate_all_faults(models::sliding_window(2)).size(),
              enumerate_all_faults(models::sliding_window(6)).size());
    EXPECT_LT(enumerate_all_faults(models::rtos_round_robin(2)).size(),
              enumerate_all_faults(models::rtos_round_robin(4)).size());
}

TEST(zoo_test, zoo_campaign_smoke_localizes_soundly) {
    // A trimmed campaign over each zoo member: detection must be sound and
    // localization exact (the same invariant the fixed models hold).
    for (const auto& [name, sys] : models::zoo_models()) {
        SCOPED_TRACE(name);
        test_suite suite = transition_tour(sys).suite;
        rng wr(99);
        suite.extend(random_walk_suite(sys, wr,
                                       {.cases = 3, .steps_per_case = 10}));
        auto faults = enumerate_all_faults(sys);
        if (faults.size() > 40) faults.resize(40);
        const auto stats = run_campaign(sys, suite, faults);
        EXPECT_EQ(stats.sound, stats.detected);
        EXPECT_EQ(stats.localized + stats.localized_equiv, stats.detected);
    }
}

}  // namespace
}  // namespace cfsmdiag
