// Tests for the multiple-fault extension (the paper's future work).
#include <gtest/gtest.h>

#include "helpers.hpp"

namespace cfsmdiag {
namespace {

using testing_helpers::make_pair_system;
using testing_helpers::tid;

TEST(fault_set_test, validation) {
    const system sys = make_pair_system();
    const single_transition_fault f1{
        tid(sys, 0, "a1"), sys.symbols().lookup("ok2"), std::nullopt};
    const single_transition_fault f2{tid(sys, 1, "b1"), std::nullopt,
                                     state_id{0}};
    EXPECT_NO_THROW(validate_fault_set(sys, {{f1, f2}}));
    EXPECT_THROW(validate_fault_set(sys, {{}}), error);
    EXPECT_THROW(validate_fault_set(sys, {{f1, f1}}), error);
    const single_transition_fault f3{tid(sys, 0, "a2"),
                                     sys.symbols().lookup("ok"),
                                     std::nullopt};
    EXPECT_THROW(validate_fault_set(sys, {{f1, f2, f3}}, 2), error);
}

TEST(multi_iut_test, applies_both_faults) {
    const system sys = make_pair_system();
    const fault_set fs{{
        {tid(sys, 0, "a1"), sys.symbols().lookup("ok2"), std::nullopt},
        {tid(sys, 0, "a2"), sys.symbols().lookup("ok"), std::nullopt},
    }};
    simulated_multi_iut iut(sys, fs);
    const auto obs = iut.execute({global_input::reset(),
                                  testing_helpers::in(sys, 1, "x"),
                                  testing_helpers::in(sys, 1, "x")});
    EXPECT_EQ(obs[1], testing_helpers::at(sys, 1, "ok2"));
    EXPECT_EQ(obs[2], testing_helpers::at(sys, 1, "ok"));
}

TEST(multi_diagnoser_test, passes_on_fault_free_iut) {
    const system sys = make_pair_system();
    simulated_iut iut(sys);
    const auto result =
        diagnose_multi(sys, transition_tour(sys).suite, iut);
    EXPECT_EQ(result.outcome, diagnosis_outcome::passed);
}

TEST(multi_diagnoser_test, localizes_a_single_fault_too) {
    // k <= 2 diagnosis subsumes the single-fault case.
    const system sys = make_pair_system();
    const fault_set truth{{{tid(sys, 0, "a2"), sys.symbols().lookup("ok"),
                            std::nullopt}}};
    simulated_multi_iut iut(sys, truth);
    const auto result =
        diagnose_multi(sys, transition_tour(sys).suite, iut);
    ASSERT_TRUE(result.is_localized())
        << to_string(result.outcome) << " with "
        << result.final_hypotheses.size() << " hypotheses";
    // Truth (or an equivalent) among finals.
    bool found = false;
    for (const auto& fs : result.final_hypotheses) {
        if (!splitting_sequence(sys, {truth.to_overrides(),
                                      fs.to_overrides()})
                 .has_value())
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(multi_diagnoser_test, localizes_two_output_faults) {
    const system sys = make_pair_system();
    const fault_set truth{{
        {tid(sys, 0, "a2"), sys.symbols().lookup("ok"), std::nullopt},
        {tid(sys, 1, "b5"), sys.symbols().lookup("r2"), std::nullopt},
    }};
    simulated_multi_iut iut(sys, truth);
    test_suite suite = transition_tour(sys).suite;
    rng wr(5);
    suite.extend(random_walk_suite(sys, wr,
                                   {.cases = 4, .steps_per_case = 8}));
    const auto result = diagnose_multi(sys, suite, iut);
    ASSERT_TRUE(result.is_localized()) << to_string(result.outcome);
    bool found = false;
    for (const auto& fs : result.final_hypotheses) {
        if (!splitting_sequence(sys, {truth.to_overrides(),
                                      fs.to_overrides()})
                 .has_value())
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(multi_diagnoser_test, localizes_output_plus_transfer_pair) {
    const system sys = make_pair_system();
    const fault_set truth{{
        {tid(sys, 0, "a3"), sys.symbols().lookup("msg2"), std::nullopt},
        {tid(sys, 1, "b5"), std::nullopt, state_id{0}},
    }};
    simulated_multi_iut iut(sys, truth);
    test_suite suite = transition_tour(sys).suite;
    rng wr(9);
    suite.extend(random_walk_suite(sys, wr,
                                   {.cases = 6, .steps_per_case = 10}));
    const auto result = diagnose_multi(sys, suite, iut);
    ASSERT_TRUE(result.is_localized()) << to_string(result.outcome);
    bool found = false;
    for (const auto& fs : result.final_hypotheses) {
        if (!splitting_sequence(sys, {truth.to_overrides(),
                                      fs.to_overrides()})
                 .has_value())
            found = true;
    }
    EXPECT_TRUE(found) << "final hypotheses miss the truth";
}

TEST(multi_diagnoser_test, soundness_sweep_over_double_faults) {
    // Deterministic sample of double faults on the pair system: whenever
    // detected, the truth must be among (or equivalent to) the finals.
    const system sys = make_pair_system();
    test_suite suite = transition_tour(sys).suite;
    rng wr(31);
    suite.extend(random_walk_suite(sys, wr,
                                   {.cases = 4, .steps_per_case = 10}));

    const auto singles = enumerate_all_faults(sys);
    std::size_t checked = 0;
    for (std::size_t i = 0; i < singles.size() && checked < 12; i += 5) {
        for (std::size_t j = i + 1; j < singles.size() && checked < 12;
             j += 7) {
            if (singles[i].target == singles[j].target) continue;
            const fault_set truth{{singles[i], singles[j]}};
            simulated_multi_iut iut(sys, truth);
            const auto result = diagnose_multi(sys, suite, iut);
            if (result.outcome == diagnosis_outcome::passed) continue;
            ++checked;
            SCOPED_TRACE(describe(sys, truth));
            ASSERT_FALSE(result.final_hypotheses.empty())
                << to_string(result.outcome);
            bool found = false;
            for (const auto& fs : result.final_hypotheses) {
                if (!splitting_sequence(sys, {truth.to_overrides(),
                                              fs.to_overrides()})
                         .has_value())
                    found = true;
            }
            EXPECT_TRUE(found);
        }
    }
    EXPECT_GT(checked, 4u);
}

TEST(multi_diagnoser_test, describe_renders_sets) {
    const system sys = make_pair_system();
    const fault_set fs{{
        {tid(sys, 0, "a2"), sys.symbols().lookup("ok"), std::nullopt},
        {tid(sys, 1, "b5"), std::nullopt, state_id{0}},
    }};
    const std::string text = describe(sys, fs);
    EXPECT_NE(text.find("A.a2"), std::string::npos);
    EXPECT_NE(text.find("B.b5"), std::string::npos);
    EXPECT_NE(text.find(";"), std::string::npos);
}

}  // namespace
}  // namespace cfsmdiag
