// Tests for the nondeterministic (unsynchronized) semantics and the
// possibilistic diagnoser.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "nondet/diagnose.hpp"

namespace cfsmdiag {
namespace {

using testing_helpers::in;
using testing_helpers::make_pair_system;
using testing_helpers::tid;

TEST(behaviours_test, synchronizing_tester_recovers_synchronous_semantics) {
    // With synchronize = true (inputs wait for quiescence) any schedule
    // has exactly one behaviour — the paper's synchronous semantics.
    const system sys = make_pair_system();
    const auto tour = transition_tour(sys).suite;
    behaviour_options opts;
    opts.synchronize = true;
    const auto set =
        possible_behaviours(sys, tour.cases[0].inputs, std::nullopt, opts);
    ASSERT_EQ(set.streams.size(), 1u);
    EXPECT_FALSE(set.truncated);
    EXPECT_EQ(set.streams[0],
              synchronous_stream(sys, tour.cases[0].inputs));
}

TEST(behaviours_test, waiting_not_input_order_is_what_synchronizes) {
    // The same tour applied WITHOUT waiting has many behaviours: the
    // synchronization assumption is about the tester waiting out the
    // implied output, not about choosing a good input order.
    const system sys = make_pair_system();
    const auto tour = transition_tour(sys).suite;
    const auto free_running = possible_behaviours(sys, tour.cases[0].inputs);
    EXPECT_GT(free_running.streams.size(), 1u);
    EXPECT_TRUE(free_running.contains(
        synchronous_stream(sys, tour.cases[0].inputs)));
}

TEST(behaviours_test, pipelined_schedule_has_multiple_behaviours) {
    // send@P1 queues msg1; applying y@P2 before delivery lets B move to
    // q1 first — two distinct behaviours (r1 vs r2 reaction).
    const system sys = make_pair_system();
    const std::vector<global_input> schedule{
        global_input::reset(), in(sys, 1, "send"), in(sys, 2, "y")};
    const auto set = possible_behaviours(sys, schedule);
    EXPECT_GE(set.streams.size(), 2u);
    // The synchronous behaviour is among them.
    EXPECT_TRUE(set.contains(synchronous_stream(sys, schedule)));
}

TEST(behaviours_test, reset_drops_inflight_messages) {
    const system sys = make_pair_system();
    // send queues a message; an immediate reset wipes it: one behaviour is
    // the empty stream.
    const std::vector<global_input> schedule{
        global_input::reset(), in(sys, 1, "send"), global_input::reset()};
    const auto set = possible_behaviours(sys, schedule);
    EXPECT_TRUE(set.contains({}));
}

TEST(behaviours_test, fault_overlay_respected) {
    const system sys = make_pair_system();
    const single_transition_fault f{
        tid(sys, 0, "a3"), sys.symbols().lookup("msg2"), std::nullopt};
    const std::vector<global_input> schedule{global_input::reset(),
                                             in(sys, 1, "send")};
    const auto faulty = possible_behaviours(sys, schedule, f.to_override());
    ASSERT_EQ(faulty.streams.size(), 1u);
    EXPECT_EQ(faulty.streams[0],
              observation_stream{testing_helpers::at(sys, 2, "r2")});
}

TEST(behaviours_test, truncation_is_flagged) {
    const system sys = make_pair_system();
    std::vector<global_input> schedule{global_input::reset()};
    for (int i = 0; i < 6; ++i) schedule.push_back(in(sys, 1, "send"));
    behaviour_options opts;
    opts.max_states = 10;
    const auto set = possible_behaviours(sys, schedule, std::nullopt, opts);
    EXPECT_TRUE(set.truncated);
}

TEST(nondet_iut_test, deterministic_per_seed) {
    const system sys = make_pair_system();
    const std::vector<global_input> schedule{
        global_input::reset(), in(sys, 1, "send"), in(sys, 2, "y")};
    simulated_nondet_iut a(sys, std::nullopt, 7), b(sys, std::nullopt, 7);
    EXPECT_EQ(a.execute(schedule), b.execute(schedule));
}

TEST(nondet_diagnosis_test, clean_run_is_consistent_with_spec) {
    const system sys = make_pair_system();
    const auto suite = transition_tour(sys).suite;
    simulated_nondet_iut iut(sys, std::nullopt, 3);
    const auto result = diagnose_nondet(sys, suite, suite, iut);
    EXPECT_EQ(result.outcome, nondet_outcome::consistent_with_spec);
}

TEST(nondet_diagnosis_test, detectable_fault_yields_sound_hypotheses) {
    const system sys = make_pair_system();
    const single_transition_fault truth{
        tid(sys, 0, "a2"), sys.symbols().lookup("ok"), std::nullopt};
    // Synchronizable schedules keep behaviour sets tight.
    const auto suite = transition_tour(sys).suite;
    test_suite pool = per_machine_w_suite(sys).suite;

    simulated_nondet_iut iut(sys, truth, 11);
    const auto result = diagnose_nondet(sys, suite, pool, iut);
    ASSERT_NE(result.outcome, nondet_outcome::consistent_with_spec);
    ASSERT_NE(result.outcome, nondet_outcome::no_consistent_hypothesis);
    // Soundness: the truth is among the finals.
    EXPECT_NE(std::find(result.final_hypotheses.begin(),
                        result.final_hypotheses.end(), truth),
              result.final_hypotheses.end());
}

TEST(nondet_diagnosis_test, ambiguity_is_an_honest_outcome) {
    // With only pipelined (order-sensitive) schedules, overlapping
    // behaviour sets can keep several hypotheses alive; the diagnoser must
    // say "ambiguous" rather than guess — and the truth must survive.
    const system sys = make_pair_system();
    const single_transition_fault truth{tid(sys, 1, "b1"), std::nullopt,
                                        state_id{0}};
    test_suite suite;
    suite.add(parse_compact("p1", "R, send1, y2, send1", sys.symbols()));
    suite.add(parse_compact("p2", "R, y2, send1, send1", sys.symbols()));
    test_suite pool = suite;

    simulated_nondet_iut iut(sys, truth, 5);
    const auto result = diagnose_nondet(sys, suite, pool, iut);
    if (result.outcome == nondet_outcome::consistent_with_spec) {
        // The unlucky interleaving masked the fault entirely — also an
        // honest possibilistic verdict.
        SUCCEED();
        return;
    }
    ASSERT_FALSE(result.final_hypotheses.empty());
    EXPECT_NE(std::find(result.final_hypotheses.begin(),
                        result.final_hypotheses.end(), truth),
              result.final_hypotheses.end());
}

TEST(nondet_diagnosis_test, soundness_sweep) {
    const system sys = make_pair_system();
    const auto suite = transition_tour(sys).suite;
    const auto pool = per_machine_w_suite(sys).suite;
    auto faults = enumerate_all_faults(sys);
    std::size_t checked = 0;
    for (std::size_t i = 0; i < faults.size(); i += 3) {
        simulated_nondet_iut iut(sys, faults[i], 100 + i);
        const auto result = diagnose_nondet(sys, suite, pool, iut);
        if (result.outcome == nondet_outcome::consistent_with_spec)
            continue;  // masked by interleaving choice: legitimate
        ++checked;
        SCOPED_TRACE(describe(sys, faults[i]));
        EXPECT_NE(result.outcome, nondet_outcome::no_consistent_hypothesis);
        EXPECT_NE(std::find(result.final_hypotheses.begin(),
                            result.final_hypotheses.end(), faults[i]),
                  result.final_hypotheses.end());
    }
    EXPECT_GT(checked, 3u);
}

}  // namespace
}  // namespace cfsmdiag
