// Machine-checks the Figure-1 reconstruction against every intermediate
// result the paper states in Table 1 and the Section 4 walkthrough.
#include <gtest/gtest.h>

#include "cfsmdiag.hpp"

namespace cfsmdiag::paperex {
namespace {

class paper_example_test : public ::testing::Test {
  protected:
    paper_example ex = make_paper_example();
    machine_id m1{0}, m2{1}, m3{2};

    [[nodiscard]] std::string expected_row(const test_case& tc) const {
        std::vector<std::string> cells;
        for (const auto& obs : expected_outputs(ex.spec, tc))
            cells.push_back(to_string(obs, ex.spec.symbols()));
        return join(cells, ", ");
    }

    [[nodiscard]] std::string observed_row(const test_case& tc) const {
        simulated_iut iut(ex.spec, ex.fault);
        std::vector<std::string> cells;
        for (const auto& obs : iut.execute(tc.inputs))
            cells.push_back(to_string(obs, ex.spec.symbols()));
        return join(cells, ", ");
    }

    [[nodiscard]] std::string fired_row(const test_case& tc) const {
        std::vector<std::string> cells;
        for (const auto& step : explain(ex.spec, tc.inputs))
            cells.push_back(fired_label(ex.spec, step));
        return join(cells, ", ");
    }
};

TEST_F(paper_example_test, system_is_structurally_valid) {
    EXPECT_NO_THROW(validate_structure(ex.spec));
    EXPECT_EQ(ex.spec.machine_count(), 3u);
}

TEST_F(paper_example_test, section2_alphabet_partitions) {
    const auto a = compute_alphabets(ex.spec);
    const auto& sym = ex.spec.symbols();
    auto names = [&](const std::vector<symbol>& v) {
        std::vector<std::string> out;
        for (symbol s : v) out.push_back(sym.name(s));
        std::sort(out.begin(), out.end());
        return out;
    };
    using V = std::vector<std::string>;

    // Section 2.1: IEO1 = {a,b}; IIO1>2 = {c,d}; IIO1>3 = {e,f};
    // OEO1 = {c',d'}; OIO1>2 = {c',d'}; OIO1>3 = {c',d'}.
    EXPECT_EQ(names(a[0].ieo), (V{"a", "b"}));
    EXPECT_EQ(names(a[0].iio_to[1]), (V{"c", "d"}));
    EXPECT_EQ(names(a[0].iio_to[2]), (V{"e", "f"}));
    EXPECT_EQ(names(a[0].oeo), (V{"c'", "d'"}));
    EXPECT_EQ(names(a[0].oio_to[1]), (V{"c'", "d'"}));
    EXPECT_EQ(names(a[0].oio_to[2]), (V{"c'", "d'"}));

    // IEO2 = {c',d',o,p}; IIO2>1 = {q,r}; IIO2>3 = {s,t}; OEO2 = {a,b};
    // OIO2>1 = {a,b}; OIO2>3 = {u,v}.
    EXPECT_EQ(names(a[1].ieo), (V{"c'", "d'", "o", "p"}));
    EXPECT_EQ(names(a[1].iio_to[0]), (V{"q", "r"}));
    EXPECT_EQ(names(a[1].iio_to[2]), (V{"s", "t"}));
    EXPECT_EQ(names(a[1].oeo), (V{"a", "b"}));
    EXPECT_EQ(names(a[1].oio_to[0]), (V{"a", "b"}));
    EXPECT_EQ(names(a[1].oio_to[2]), (V{"u", "v"}));

    // IEO3 = {c',d',u,v}; IIO3>1 = {w,x}; IIO3>2 = {y,z}; OEO3 = {a,b};
    // OIO3>1 = {a,b}; OIO3>2 = {o,p}.
    EXPECT_EQ(names(a[2].ieo), (V{"c'", "d'", "u", "v"}));
    EXPECT_EQ(names(a[2].iio_to[0]), (V{"w", "x"}));
    EXPECT_EQ(names(a[2].iio_to[1]), (V{"y", "z"}));
    EXPECT_EQ(names(a[2].oeo), (V{"a", "b"}));
    EXPECT_EQ(names(a[2].oio_to[0]), (V{"a", "b"}));
    EXPECT_EQ(names(a[2].oio_to[1]), (V{"o", "p"}));

    // IEOq subsets: IEOq1<2 = IEOq1<3 = {a,b}; IEOq2<1 = {c',d'};
    // IEOq3<1 = {c',d'}; IEOq3<2 = {u,v}; IEOq2<3 = {o,p}.
    EXPECT_EQ(names(a[0].ieoq_from[1]), (V{"a", "b"}));
    EXPECT_EQ(names(a[0].ieoq_from[2]), (V{"a", "b"}));
    EXPECT_EQ(names(a[1].ieoq_from[0]), (V{"c'", "d'"}));
    EXPECT_EQ(names(a[1].ieoq_from[2]), (V{"o", "p"}));
    EXPECT_EQ(names(a[2].ieoq_from[0]), (V{"c'", "d'"}));
    EXPECT_EQ(names(a[2].ieoq_from[1]), (V{"u", "v"}));
}

TEST_F(paper_example_test, table1_tc1_rows) {
    const test_case& tc1 = ex.suite.cases[0];
    // Spec. transitions: tr, t1, t''1, t6 t'1, t'6 t''4, t''5 t7.
    EXPECT_EQ(fired_row(tc1), "tr, t1, t''1, t6 t'1, t'6 t''4, t''5 t7");
    // Expected output: -, c'1, a3, a2, b3, d'1.
    EXPECT_EQ(expected_row(tc1), "-, c'@P1, a@P3, a@P2, b@P3, d'@P1");
    // Observed output: -, c'1, a3, a2, b3, c'1.
    EXPECT_EQ(observed_row(tc1), "-, c'@P1, a@P3, a@P2, b@P3, c'@P1");
}

TEST_F(paper_example_test, table1_tc2_rows) {
    const test_case& tc2 = ex.suite.cases[1];
    // Spec. transitions: -, t1, t'1, t'4, t''1, t''5 t4, t5 t''1.
    EXPECT_EQ(fired_row(tc2), "tr, t1, t'1, t'4, t''1, t''5 t4, t5 t''1");
    // Expected output: -, c'1, a2, b2, a3, d'1, a3 — and tc2 shows no
    // symptom (the faulty t''4 never executes).
    EXPECT_EQ(expected_row(tc2), "-, c'@P1, a@P2, b@P2, a@P3, d'@P1, a@P3");
    EXPECT_EQ(observed_row(tc2), expected_row(tc2));
}

TEST_F(paper_example_test, step3_symptom_and_ust) {
    simulated_iut iut(ex.spec, ex.fault);
    const auto report = collect_symptoms(ex.spec, ex.suite, iut);
    ASSERT_EQ(report.symptomatic_cases.size(), 1u);
    EXPECT_EQ(report.symptomatic_cases[0], 0u);  // tc1
    const auto& run = report.runs[0];
    ASSERT_TRUE(run.first_symptom.has_value());
    EXPECT_EQ(*run.first_symptom, 5u);  // 6th position (o_{1,6})
    ASSERT_TRUE(report.ust.has_value());
    EXPECT_EQ(ex.spec.transition_label(*report.ust), "M1.t7");
    EXPECT_EQ(to_string(report.uso, ex.spec.symbols()), "c'@P1");
    EXPECT_FALSE(report.flag);  // no discrepancy after the first symptom
}

TEST_F(paper_example_test, step4_conflict_sets) {
    simulated_iut iut(ex.spec, ex.fault);
    const auto report = collect_symptoms(ex.spec, ex.suite, iut);
    const auto confl = generate_conflict_sets(ex.spec, report);

    auto set_names = [&](machine_id m, std::size_t k) {
        std::vector<std::string> out;
        for (transition_id t : confl.per_machine[m.value][k])
            out.push_back(ex.spec.machine(m).at(t).name);
        std::sort(out.begin(), out.end());
        return out;
    };
    using V = std::vector<std::string>;
    // Conf1_1 = {t1, t6, t7}, Conf2_1 = {t'1, t'6}, Conf3_1 = {t''1, t''4,
    // t''5}.
    EXPECT_EQ(set_names(m1, 0), (V{"t1", "t6", "t7"}));
    EXPECT_EQ(set_names(m2, 0), (V{"t'1", "t'6"}));
    EXPECT_EQ(set_names(m3, 0), (V{"t''1", "t''4", "t''5"}));
}

TEST_F(paper_example_test, step5_candidate_sets_and_hypotheses) {
    simulated_iut iut(ex.spec, ex.fault);
    const auto report = collect_symptoms(ex.spec, ex.suite, iut);
    const auto confl = generate_conflict_sets(ex.spec, report);
    const auto cands = generate_candidates(ex.spec, report, confl);

    auto names = [&](machine_id m, const std::vector<transition_id>& ts) {
        std::vector<std::string> out;
        for (transition_id t : ts)
            out.push_back(ex.spec.machine(m).at(t).name);
        std::sort(out.begin(), out.end());
        return out;
    };
    using V = std::vector<std::string>;

    // ITC = conflict sets (single symptomatic case, no intersection).
    EXPECT_EQ(names(m1, cands.itc[0]), (V{"t1", "t6", "t7"}));
    EXPECT_EQ(names(m2, cands.itc[1]), (V{"t'1", "t'6"}));
    EXPECT_EQ(names(m3, cands.itc[2]), (V{"t''1", "t''4", "t''5"}));

    // ustset1 = {t7}; FTCtr1 = {t1, t6}; FTCco1 = {t6}.
    ASSERT_TRUE(cands.ust.has_value());
    EXPECT_EQ(ex.spec.transition_label(*cands.ust), "M1.t7");
    EXPECT_EQ(names(m1, cands.ftc_tr[0]), (V{"t1", "t6"}));
    EXPECT_EQ(names(m1, cands.ftc_co[0]), (V{"t6"}));
    // FTCtr2 per the Step 5B text = ITC2 (no ust in M2); FTCco2 = {t'6}.
    EXPECT_EQ(names(m2, cands.ftc_tr[1]), (V{"t'1", "t'6"}));
    EXPECT_EQ(names(m2, cands.ftc_co[1]), (V{"t'6"}));
    EXPECT_EQ(names(m3, cands.ftc_tr[2]), (V{"t''1", "t''4", "t''5"}));
    EXPECT_EQ(names(m3, cands.ftc_co[2]), (V{"t''5"}));

    // Step 5B hypothesis sets.
    const auto dc = evaluate_candidates(ex.spec, ex.suite, report, cands);
    auto find = [&](const std::string& label) -> const evaluated_candidate& {
        for (const auto& c : dc.evaluated) {
            if (ex.spec.transition_label(c.id) == label) return c;
        }
        throw error("candidate not evaluated: " + label);
    };

    // EndStates[t1] = EndStates[t6] = {}, outputs[t6] = {}.
    EXPECT_TRUE(find("M1.t1").end_states.empty());
    EXPECT_TRUE(find("M1.t6").end_states.empty());
    EXPECT_TRUE(find("M1.t6").outputs.empty());
    // ustset1 = {t7}: outputs[t7] = {c'} (flag = false path).
    const auto& ust = find("M1.t7");
    EXPECT_TRUE(ust.is_ust);
    ASSERT_EQ(ust.outputs.size(), 1u);
    EXPECT_EQ(ex.spec.symbols().name(ust.outputs[0]), "c'");
    // EndStates[t'1] = {}, outputs[t'6] = {}.
    EXPECT_TRUE(find("M2.t'1").end_states.empty());
    EXPECT_TRUE(find("M2.t'6").outputs.empty());
    // EndStates[t''1] = {}, EndStates[t''4] = {s0}, outputs[t''5] = {a}.
    EXPECT_TRUE(find("M3.t''1").end_states.empty());
    const auto& t4 = find("M3.t''4");
    ASSERT_EQ(t4.end_states.size(), 1u);
    EXPECT_EQ(ex.spec.machine(m3).state_name(t4.end_states[0]), "s0");
    const auto& t5 = find("M3.t''5");
    ASSERT_EQ(t5.outputs.size(), 1u);
    EXPECT_EQ(ex.spec.symbols().name(t5.outputs[0]), "a");

    // Step 5C: exactly the paper's three diagnoses.
    const auto diags = dc.diagnoses();
    std::vector<std::string> described;
    for (const auto& d : diags) described.push_back(describe(ex.spec, d));
    std::sort(described.begin(), described.end());
    ASSERT_EQ(described.size(), 3u);
    EXPECT_EQ(described[0], "M1.t7: output fault, c' instead of d'");
    EXPECT_EQ(described[1],
              "M3.t''4: transfer fault, next state s0 instead of s1");
    EXPECT_EQ(described[2], "M3.t''5: output fault, a instead of b");
}

TEST_F(paper_example_test, step6_full_diagnosis_localizes_t4) {
    simulated_iut iut(ex.spec, ex.fault);
    diagnoser_options opts;
    opts.evaluation = evaluation_mode::paper_flag_routing;
    const auto result = diagnose(ex.spec, ex.suite, iut, opts);

    EXPECT_EQ(result.outcome, diagnosis_outcome::localized);
    // Exactly the paper's three diagnoses enter Step 6.
    EXPECT_EQ(result.initial_diagnoses.size(), 3u);
    ASSERT_EQ(result.final_diagnoses.size(), 1u);
    EXPECT_EQ(result.final_diagnoses[0], ex.fault);
    EXPECT_FALSE(result.used_escalation);
    EXPECT_FALSE(result.used_fallback_search);

    // The paper needs exactly two additional tests: the ust output check
    // ("R, c1, b1") and one transfer check for t''4.
    ASSERT_EQ(result.additional_tests.size(), 2u);
    const auto& first = result.additional_tests[0];
    EXPECT_EQ(to_string(first.tc, ex.spec.symbols()), "R, c@P1, b@P1");
    EXPECT_EQ(first.purpose, "output check of M1.t7");
    // Observed "-, a2, d'1": t7 is correct.
    std::vector<std::string> obs;
    for (const auto& o : first.observed)
        obs.push_back(to_string(o, ex.spec.symbols()));
    EXPECT_EQ(join(obs, ", "), "-, a@P2, d'@P1");

    const auto& second = result.additional_tests[1];
    EXPECT_EQ(second.purpose, "transfer check of M3.t''4 (W probe)");
    // The transfer prefix is the paper's "R, c'3" followed by t''4's input
    // v3 and one distinguishing input for {s0, s1} of M3 (the paper picks
    // v3; c'3 is equally separating and our BFS finds it first — both are
    // "a possible sequence" in the paper's words).
    ASSERT_GE(second.tc.inputs.size(), 3u);
    EXPECT_EQ(to_string(second.tc.inputs[1], ex.spec.symbols()), "c'@P3");
    EXPECT_EQ(to_string(second.tc.inputs[2], ex.spec.symbols()), "v@P3");
}

TEST_F(paper_example_test, complete_mode_also_localizes_in_two_tests) {
    // The default (complete) evaluation admits extra double-fault couples
    // for the ust — tc1 ends at the symptom, so "c' and a transfer" is
    // consistent too — but the same two additional tests still settle it.
    simulated_iut iut(ex.spec, ex.fault);
    const auto result = diagnose(ex.spec, ex.suite, iut);
    EXPECT_EQ(result.outcome, diagnosis_outcome::localized);
    ASSERT_EQ(result.final_diagnoses.size(), 1u);
    EXPECT_EQ(result.final_diagnoses[0], ex.fault);
    EXPECT_GE(result.initial_diagnoses.size(), 3u);
    EXPECT_EQ(result.additional_tests.size(), 2u);
}

TEST_F(paper_example_test, fault_free_iut_passes) {
    simulated_iut iut(ex.spec);
    const auto result = diagnose(ex.spec, ex.suite, iut);
    EXPECT_EQ(result.outcome, diagnosis_outcome::passed);
    EXPECT_TRUE(result.final_diagnoses.empty());
}

}  // namespace
}  // namespace cfsmdiag::paperex
