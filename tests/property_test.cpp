// Property-style sweeps (TEST_P): the paper's guarantee, checked
// exhaustively.
//
// For every single-transition fault (output, transfer, or both) that the
// detection suite catches, the diagnoser must
//   (soundness)   keep the true hypothesis — or an observationally
//                 equivalent one — among the final diagnoses, and
//   (sharpness)   end localized or localized-up-to-equivalence.
#include <gtest/gtest.h>

#include "helpers.hpp"

namespace cfsmdiag {
namespace {

using testing_helpers::make_pair_system;

struct sweep_config {
    std::string name;
    std::uint64_t seed = 0;         ///< 0 = use the fixed pair system
    std::size_t machines = 2;
    std::size_t states = 3;
    std::size_t extra = 5;
    std::size_t max_faults = 200;
};

std::ostream& operator<<(std::ostream& os, const sweep_config& c) {
    return os << c.name;
}

class fault_sweep : public ::testing::TestWithParam<sweep_config> {
  protected:
    [[nodiscard]] system make_system() const {
        const auto& cfg = GetParam();
        if (cfg.seed == 0) return make_pair_system();
        rng random(cfg.seed);
        random_system_options opts;
        opts.machines = cfg.machines;
        opts.states_per_machine = cfg.states;
        opts.extra_transitions = cfg.extra;
        return random_system(opts, random);
    }
};

TEST_P(fault_sweep, detected_faults_are_diagnosed_soundly) {
    const system sys = make_system();
    const test_suite suite = transition_tour(sys).suite;
    auto faults = enumerate_all_faults(sys);
    if (faults.size() > GetParam().max_faults)
        faults.resize(GetParam().max_faults);

    campaign_options opts;
    const auto stats = run_campaign(sys, suite, faults, opts);

    EXPECT_EQ(stats.total, faults.size());
    for (const auto& entry : stats.entries) {
        if (!entry.detected) continue;
        SCOPED_TRACE(describe(sys, entry.fault));
        // Soundness: truth among final diagnoses (maybe via equivalence).
        EXPECT_TRUE(entry.sound);
        // Sharpness: the run must terminate in a localized state.
        EXPECT_TRUE(entry.outcome == diagnosis_outcome::localized ||
                    entry.outcome ==
                        diagnosis_outcome::localized_up_to_equivalence)
            << to_string(entry.outcome);
    }
}

TEST_P(fault_sweep, undetected_faults_pass_quietly) {
    const system sys = make_system();
    const test_suite suite = transition_tour(sys).suite;
    auto faults = enumerate_all_faults(sys);
    if (faults.size() > GetParam().max_faults)
        faults.resize(GetParam().max_faults);
    for (const auto& f : faults) {
        if (detects(sys, suite, f)) continue;
        simulated_iut iut(sys, f);
        const auto result = diagnose(sys, suite, iut);
        EXPECT_EQ(result.outcome, diagnosis_outcome::passed)
            << describe(sys, f);
    }
}

INSTANTIATE_TEST_SUITE_P(
    systems, fault_sweep,
    ::testing::Values(
        sweep_config{.name = "pair", .seed = 0},
        sweep_config{.name = "rand2x3", .seed = 101, .machines = 2,
                     .states = 3, .extra = 5},
        sweep_config{.name = "rand2x4", .seed = 202, .machines = 2,
                     .states = 4, .extra = 7},
        sweep_config{.name = "rand3x3", .seed = 303, .machines = 3,
                     .states = 3, .extra = 6},
        sweep_config{.name = "rand3x4", .seed = 404, .machines = 3,
                     .states = 4, .extra = 8, .max_faults = 120},
        sweep_config{.name = "rand4x3", .seed = 505, .machines = 4,
                     .states = 3, .extra = 6, .max_faults = 100},
        sweep_config{.name = "rand5x2", .seed = 606, .machines = 5,
                     .states = 2, .extra = 5, .max_faults = 100}),
    [](const ::testing::TestParamInfo<sweep_config>& info) {
        return info.param.name;
    });

class paper_fault_sweep : public ::testing::TestWithParam<int> {};

TEST(paper_exhaustive, every_detected_fault_is_diagnosed) {
    const auto ex = paperex::make_paper_example();
    // Use a stronger suite than Table 1's two cases: the transition tour,
    // which covers all transitions.
    const test_suite suite = transition_tour(ex.spec).suite;
    auto faults = enumerate_all_faults(ex.spec);

    campaign_options opts;
    const auto stats = run_campaign(ex.spec, suite, faults, opts);
    EXPECT_GT(stats.detected, 0u);
    EXPECT_EQ(stats.sound, stats.detected);
    EXPECT_EQ(stats.localized + stats.localized_equiv, stats.detected);
}

TEST(paper_exhaustive, table1_suite_diagnoses_its_detectable_faults) {
    const auto ex = paperex::make_paper_example();
    auto faults = enumerate_all_faults(ex.spec);
    campaign_options opts;
    const auto stats = run_campaign(ex.spec, ex.suite, faults, opts);
    // Table 1's two test cases detect only some faults; whatever they
    // detect must be diagnosed soundly.
    for (const auto& entry : stats.entries) {
        if (!entry.detected) continue;
        SCOPED_TRACE(describe(ex.spec, entry.fault));
        EXPECT_TRUE(entry.sound);
    }
    EXPECT_EQ(stats.sound, stats.detected);
}

TEST(random_system_test, generator_produces_valid_connected_systems) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull, 17ull, 99ull}) {
        rng random(seed);
        random_system_options opts;
        opts.machines = 3;
        opts.states_per_machine = 4;
        const system sys = random_system(opts, random);
        EXPECT_TRUE(check_structure(sys).empty()) << "seed " << seed;
        for (std::uint32_t m = 0; m < sys.machine_count(); ++m) {
            EXPECT_TRUE(is_initially_connected(sys.machine(machine_id{m})))
                << "seed " << seed << " machine " << m;
        }
    }
}

TEST(random_system_test, deterministic_under_seed) {
    random_system_options opts;
    rng r1(5), r2(5);
    const system a = random_system(opts, r1);
    const system b = random_system(opts, r2);
    ASSERT_EQ(a.machine_count(), b.machine_count());
    for (std::uint32_t m = 0; m < a.machine_count(); ++m) {
        const auto& ta = a.machine(machine_id{m}).transitions();
        const auto& tb = b.machine(machine_id{m}).transitions();
        ASSERT_EQ(ta.size(), tb.size());
        for (std::size_t i = 0; i < ta.size(); ++i) {
            EXPECT_EQ(ta[i].from, tb[i].from);
            EXPECT_EQ(ta[i].input, tb[i].input);
            EXPECT_EQ(ta[i].output, tb[i].output);
            EXPECT_EQ(ta[i].to, tb[i].to);
        }
    }
}

}  // namespace
}  // namespace cfsmdiag
