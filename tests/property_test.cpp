// Property-style sweeps (TEST_P): the paper's guarantee, checked
// exhaustively.
//
// For every single-transition fault (output, transfer, or both) that the
// detection suite catches, the diagnoser must
//   (soundness)   keep the true hypothesis — or an observationally
//                 equivalent one — among the final diagnoses, and
//   (sharpness)   end localized or localized-up-to-equivalence.
#include <gtest/gtest.h>

#include "helpers.hpp"

namespace cfsmdiag {
namespace {

using testing_helpers::make_pair_system;

struct sweep_config {
    std::string name;
    std::uint64_t seed = 0;         ///< 0 = use the fixed pair system
    std::size_t machines = 2;
    std::size_t states = 3;
    std::size_t extra = 5;
    std::size_t max_faults = 200;
};

std::ostream& operator<<(std::ostream& os, const sweep_config& c) {
    return os << c.name;
}

class fault_sweep : public ::testing::TestWithParam<sweep_config> {
  protected:
    [[nodiscard]] system make_system() const {
        const auto& cfg = GetParam();
        if (cfg.seed == 0) return make_pair_system();
        rng random(cfg.seed);
        random_system_options opts;
        opts.machines = cfg.machines;
        opts.states_per_machine = cfg.states;
        opts.extra_transitions = cfg.extra;
        return random_system(opts, random);
    }
};

TEST_P(fault_sweep, detected_faults_are_diagnosed_soundly) {
    const system sys = make_system();
    const test_suite suite = transition_tour(sys).suite;
    auto faults = enumerate_all_faults(sys);
    if (faults.size() > GetParam().max_faults)
        faults.resize(GetParam().max_faults);

    campaign_options opts;
    const auto stats = run_campaign(sys, suite, faults, opts);

    EXPECT_EQ(stats.total, faults.size());
    for (const auto& entry : stats.entries) {
        if (!entry.detected) continue;
        SCOPED_TRACE(describe(sys, entry.fault));
        // Soundness: truth among final diagnoses (maybe via equivalence).
        EXPECT_TRUE(entry.sound);
        // Sharpness: the run must terminate in a localized state.
        EXPECT_TRUE(entry.outcome == diagnosis_outcome::localized ||
                    entry.outcome ==
                        diagnosis_outcome::localized_up_to_equivalence)
            << to_string(entry.outcome);
    }
}

TEST_P(fault_sweep, undetected_faults_pass_quietly) {
    const system sys = make_system();
    const test_suite suite = transition_tour(sys).suite;
    auto faults = enumerate_all_faults(sys);
    if (faults.size() > GetParam().max_faults)
        faults.resize(GetParam().max_faults);
    for (const auto& f : faults) {
        if (detects(sys, suite, f)) continue;
        simulated_iut iut(sys, f);
        const auto result = diagnose(sys, suite, iut);
        EXPECT_EQ(result.outcome, diagnosis_outcome::passed)
            << describe(sys, f);
    }
}

INSTANTIATE_TEST_SUITE_P(
    systems, fault_sweep,
    ::testing::Values(
        sweep_config{.name = "pair", .seed = 0},
        sweep_config{.name = "rand2x3", .seed = 101, .machines = 2,
                     .states = 3, .extra = 5},
        sweep_config{.name = "rand2x4", .seed = 202, .machines = 2,
                     .states = 4, .extra = 7},
        sweep_config{.name = "rand3x3", .seed = 303, .machines = 3,
                     .states = 3, .extra = 6},
        sweep_config{.name = "rand3x4", .seed = 404, .machines = 3,
                     .states = 4, .extra = 8, .max_faults = 120},
        sweep_config{.name = "rand4x3", .seed = 505, .machines = 4,
                     .states = 3, .extra = 6, .max_faults = 100},
        sweep_config{.name = "rand5x2", .seed = 606, .machines = 5,
                     .states = 2, .extra = 5, .max_faults = 100}),
    [](const ::testing::TestParamInfo<sweep_config>& info) {
        return info.param.name;
    });

class paper_fault_sweep : public ::testing::TestWithParam<int> {};

TEST(paper_exhaustive, every_detected_fault_is_diagnosed) {
    const auto ex = paperex::make_paper_example();
    // Use a stronger suite than Table 1's two cases: the transition tour,
    // which covers all transitions.
    const test_suite suite = transition_tour(ex.spec).suite;
    auto faults = enumerate_all_faults(ex.spec);

    campaign_options opts;
    const auto stats = run_campaign(ex.spec, suite, faults, opts);
    EXPECT_GT(stats.detected, 0u);
    EXPECT_EQ(stats.sound, stats.detected);
    EXPECT_EQ(stats.localized + stats.localized_equiv, stats.detected);
}

TEST(paper_exhaustive, table1_suite_diagnoses_its_detectable_faults) {
    const auto ex = paperex::make_paper_example();
    auto faults = enumerate_all_faults(ex.spec);
    campaign_options opts;
    const auto stats = run_campaign(ex.spec, ex.suite, faults, opts);
    // Table 1's two test cases detect only some faults; whatever they
    // detect must be diagnosed soundly.
    for (const auto& entry : stats.entries) {
        if (!entry.detected) continue;
        SCOPED_TRACE(describe(ex.spec, entry.fault));
        EXPECT_TRUE(entry.sound);
    }
    EXPECT_EQ(stats.sound, stats.detected);
}

// --- compiled-core set algebra vs the std::set reference --------------------
//
// The flat core lowers Steps 4-5A onto bitsets over dense transition ids;
// the reporting boundary rebuilds conflict_sets/candidate_sets.  Those
// rebuilt structs must equal the reference implementations exactly — on the
// Figure-1 system and across random systems, for detected faults (populated
// sets) and undetected ones (the empty-report edge, where every set stays
// empty).

/// Runs one fault through both pipelines and compares Steps 4-5A.
void expect_compiled_sets_match(const system& spec, const spec_context& ctx,
                                const single_transition_fault& fault) {
    simulated_iut iut(spec, fault);
    const symptom_report report =
        collect_symptoms(spec, ctx.suite(), iut, &ctx.traces());

    const conflict_sets ref_confl = generate_conflict_sets(spec, report);
    const candidate_sets ref_cands =
        generate_candidates(spec, report, ref_confl);

    bit_arena arena;
    const compiled_conflicts cc =
        compile_conflicts(ctx.compiled(), report, arena);
    const conflict_sets flat_confl =
        materialize_conflict_sets(ctx.compiled(), cc);
    const candidate_sets flat_cands =
        materialize_candidate_sets(ctx.compiled(), report, cc);

    EXPECT_EQ(flat_confl.per_machine, ref_confl.per_machine);
    EXPECT_EQ(flat_cands.itc, ref_cands.itc);
    EXPECT_EQ(flat_cands.ftc_tr, ref_cands.ftc_tr);
    EXPECT_EQ(flat_cands.ftc_co, ref_cands.ftc_co);
    EXPECT_EQ(flat_cands.ust, ref_cands.ust);
}

TEST(compiled_core, set_algebra_matches_reference_on_figure1) {
    const auto ex = paperex::make_paper_example();
    const test_suite suite = transition_tour(ex.spec).suite;
    const spec_context ctx(ex.spec, suite);
    ASSERT_TRUE(ctx.compiled().packable);
    for (const auto& fault : enumerate_all_faults(ex.spec)) {
        SCOPED_TRACE(describe(ex.spec, fault));
        expect_compiled_sets_match(ex.spec, ctx, fault);
    }
}

TEST(compiled_core, set_algebra_matches_reference_on_random_systems) {
    // 20 random systems, including tiny 2x2 ones whose conflict sets often
    // cover a whole machine (the full-universe edge) and whose undetected
    // faults exercise the empty edge.
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        rng random(seed);
        random_system_options opts;
        opts.machines = seed % 3 == 0 ? 3 : 2;
        opts.states_per_machine = seed % 2 == 0 ? 2 : 3;
        opts.extra_transitions = 3 + seed % 4;
        const system sys = random_system(opts, random);
        const spec_context ctx(sys, transition_tour(sys).suite);
        ASSERT_TRUE(ctx.compiled().packable) << "seed " << seed;

        const auto faults = enumerate_all_faults(sys);
        for (std::size_t i = 0; i < faults.size(); i += 4) {
            SCOPED_TRACE("seed " + std::to_string(seed) + ", " +
                         describe(sys, faults[i]));
            expect_compiled_sets_match(sys, ctx, faults[i]);
        }
    }
}

TEST(compiled_core, diagnose_identical_with_core_on_and_off) {
    // Full-pipeline byte identity: the compiled Steps 4-6 hot path must
    // produce the same diagnosis as the reference std::set/simulator path,
    // with the replay cache both on and off.
    const auto ex = paperex::make_paper_example();
    const test_suite suite = transition_tour(ex.spec).suite;
    for (const bool cache : {true, false}) {
        diagnoser_options flat;
        flat.use_replay_cache = cache;
        diagnoser_options reference = flat;
        reference.use_compiled_core = false;
        std::size_t checked = 0;
        const auto faults = enumerate_all_faults(ex.spec);
        for (std::size_t i = 0; i < faults.size(); i += 3) {
            SCOPED_TRACE(describe(ex.spec, faults[i]));
            simulated_iut iut_a(ex.spec, faults[i]);
            simulated_iut iut_b(ex.spec, faults[i]);
            const auto a = diagnose(ex.spec, suite, iut_a, flat);
            const auto b = diagnose(ex.spec, suite, iut_b, reference);
            EXPECT_EQ(a.outcome, b.outcome);
            EXPECT_EQ(a.initial_diagnoses, b.initial_diagnoses);
            EXPECT_EQ(a.final_diagnoses, b.final_diagnoses);
            EXPECT_EQ(a.used_escalation, b.used_escalation);
            EXPECT_EQ(a.used_fallback_search, b.used_fallback_search);
            EXPECT_EQ(a.additional_tests.size(), b.additional_tests.size());
            ++checked;
        }
        EXPECT_GT(checked, 0u);
    }
}

TEST(compiled_core, campaign_entries_identical_with_core_on_and_off) {
    rng random(4242);
    random_system_options opts;
    opts.machines = 2;
    opts.states_per_machine = 3;
    opts.extra_transitions = 5;
    const system sys = random_system(opts, random);
    const test_suite suite = transition_tour(sys).suite;
    auto faults = enumerate_all_faults(sys);
    if (faults.size() > 60) faults.resize(60);

    campaign_options flat;
    campaign_options reference;
    reference.diag.use_compiled_core = false;

    campaign_engine flat_engine(sys, suite, faults, flat);
    campaign_engine ref_engine(sys, suite, faults, reference);
    const campaign_stats& a = flat_engine.run();
    const campaign_stats& b = ref_engine.run();
    ASSERT_EQ(a.entries.size(), b.entries.size());
    for (std::size_t i = 0; i < a.entries.size(); ++i) {
        SCOPED_TRACE("fault #" + std::to_string(i) + ": " +
                     describe(sys, a.entries[i].fault));
        EXPECT_EQ(a.entries[i], b.entries[i]);
    }
    // Same hypothesis work, radically less simulation overhead is the whole
    // point — but identity is the contract.
    EXPECT_EQ(flat_engine.metrics().replays, ref_engine.metrics().replays);
}

TEST(random_system_test, generator_produces_valid_connected_systems) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull, 17ull, 99ull}) {
        rng random(seed);
        random_system_options opts;
        opts.machines = 3;
        opts.states_per_machine = 4;
        const system sys = random_system(opts, random);
        EXPECT_TRUE(check_structure(sys).empty()) << "seed " << seed;
        for (std::uint32_t m = 0; m < sys.machine_count(); ++m) {
            EXPECT_TRUE(is_initially_connected(sys.machine(machine_id{m})))
                << "seed " << seed << " machine " << m;
        }
    }
}

TEST(random_system_test, deterministic_under_seed) {
    random_system_options opts;
    rng r1(5), r2(5);
    const system a = random_system(opts, r1);
    const system b = random_system(opts, r2);
    ASSERT_EQ(a.machine_count(), b.machine_count());
    for (std::uint32_t m = 0; m < a.machine_count(); ++m) {
        const auto& ta = a.machine(machine_id{m}).transitions();
        const auto& tb = b.machine(machine_id{m}).transitions();
        ASSERT_EQ(ta.size(), tb.size());
        for (std::size_t i = 0; i < ta.size(); ++i) {
            EXPECT_EQ(ta[i].from, tb[i].from);
            EXPECT_EQ(ta[i].input, tb[i].input);
            EXPECT_EQ(ta[i].output, tb[i].output);
            EXPECT_EQ(ta[i].to, tb[i].to);
        }
    }
}

}  // namespace
}  // namespace cfsmdiag
