// The replay cache (diag/replay_cache.hpp): firing index and snapshot
// correctness, verdict equivalence with the legacy full replay, and — the
// load-bearing contract — byte-identical diagnose()/run_campaign() results
// with the cache on or off, on the paper example and across random systems.
#include <gtest/gtest.h>

#include <algorithm>

#include "cfsmdiag.hpp"

namespace cfsmdiag {
namespace {

struct paper_fixture {
    paperex::paper_example ex;
    symptom_report report;

    static paper_fixture make() {
        paper_fixture fx{paperex::make_paper_example(), {}};
        simulated_iut iut(fx.ex.spec, fx.ex.fault);
        fx.report = collect_symptoms(fx.ex.spec, fx.ex.suite, iut);
        return fx;
    }
};

/// First step of `trace` whose fired list contains `t`, if any.
std::optional<std::size_t> first_fired_step(
    const std::vector<trace_step>& trace, global_transition_id t) {
    for (std::size_t step = 0; step < trace.size(); ++step) {
        for (global_transition_id g : trace[step].fired) {
            if (g == t) return step;
        }
    }
    return std::nullopt;
}

TEST(replay_cache, firing_index_matches_spec_trace) {
    const auto fx = paper_fixture::make();
    const spec_context ctx(fx.ex.spec, fx.ex.suite);
    const replay_cache cache = ctx.make_replay_cache(fx.report);
    ASSERT_EQ(cache.case_count(), fx.ex.suite.cases.size());

    for (std::size_t ci = 0; ci < fx.ex.suite.cases.size(); ++ci) {
        const auto trace =
            explain(fx.ex.spec, fx.ex.suite.cases[ci].inputs);
        for (global_transition_id t : fx.ex.spec.all_transitions()) {
            SCOPED_TRACE("case " + std::to_string(ci) + ", " +
                         fx.ex.spec.transition_label(t));
            EXPECT_EQ(cache.first_firing(ci, t), first_fired_step(trace, t));
        }
    }
}

TEST(replay_cache, snapshot_restore_reproduces_spec_suffix) {
    const auto fx = paper_fixture::make();
    const spec_context ctx(fx.ex.spec, fx.ex.suite);
    const replay_cache cache = ctx.make_replay_cache(fx.report);

    simulator sim(fx.ex.spec);
    for (std::size_t ci = 0; ci < fx.ex.suite.cases.size(); ++ci) {
        const auto& inputs = fx.ex.suite.cases[ci].inputs;
        const auto trace = explain(fx.ex.spec, inputs);
        for (global_transition_id t : fx.ex.spec.all_transitions()) {
            const auto f = cache.first_firing(ci, t);
            if (!f) continue;
            SCOPED_TRACE("case " + std::to_string(ci) + ", " +
                         fx.ex.spec.transition_label(t));
            // Restoring the snapshot and replaying the suffix on the plain
            // spec must reproduce the expected outputs exactly.
            sim.set_state(cache.snapshot(ci, t));
            for (std::size_t step = *f; step < inputs.size(); ++step)
                EXPECT_EQ(sim.apply(inputs[step]), trace[step].expected);
        }
    }
}

TEST(replay_cache, verdict_equals_legacy_for_every_enumerated_fault) {
    const auto fx = paper_fixture::make();
    const spec_context ctx(fx.ex.spec, fx.ex.suite);
    const replay_cache cache = ctx.make_replay_cache(fx.report);

    for (const auto& fault : enumerate_all_faults(fx.ex.spec)) {
        const transition_override ov = fault.to_override();
        SCOPED_TRACE(describe(fx.ex.spec, fault));
        EXPECT_EQ(cache.consistent(ov),
                  hypothesis_consistent(fx.ex.spec, fx.ex.suite, fx.report,
                                        ov, nullptr));
    }
}

TEST(replay_cache, multi_override_verdict_equals_full_replay) {
    const auto fx = paper_fixture::make();
    const spec_context ctx(fx.ex.spec, fx.ex.suite);
    const replay_cache cache = ctx.make_replay_cache(fx.report);
    const auto faults = enumerate_all_faults(fx.ex.spec);

    // Pair faults on distinct transitions; compare against a plain
    // full-suite replay of the pair.
    std::size_t checked = 0;
    for (std::size_t i = 0; i < faults.size() && checked < 400; i += 7) {
        for (std::size_t j = i + 1; j < faults.size() && checked < 400;
             j += 11) {
            if (faults[i].target == faults[j].target) continue;
            const std::vector<transition_override> ovs{
                faults[i].to_override(), faults[j].to_override()};
            bool legacy = true;
            simulator sim(fx.ex.spec, ovs);
            for (std::size_t ci = 0;
                 legacy && ci < fx.ex.suite.cases.size(); ++ci) {
                const auto& inputs = fx.ex.suite.cases[ci].inputs;
                const auto& observed = fx.report.runs[ci].observed;
                sim.reset();
                for (std::size_t step = 0; step < inputs.size(); ++step) {
                    if (sim.apply(inputs[step]) != observed[step]) {
                        legacy = false;
                        break;
                    }
                }
            }
            SCOPED_TRACE(describe(fx.ex.spec, faults[i]) + " + " +
                         describe(fx.ex.spec, faults[j]));
            EXPECT_EQ(cache.consistent(ovs), legacy);
            ++checked;
        }
    }
    ASSERT_GT(checked, 0u);
}

TEST(sequence_replay, predict_and_matches_equal_plain_observe) {
    const auto fx = paper_fixture::make();
    const auto faults = enumerate_all_faults(fx.ex.spec);

    for (const auto& tc : fx.ex.suite.cases) {
        const sequence_replay rep(fx.ex.spec, tc.inputs);
        for (std::size_t i = 0; i < faults.size(); i += 3) {
            const transition_override ov = faults[i].to_override();
            const auto plain = observe(fx.ex.spec, tc.inputs, ov);
            SCOPED_TRACE(describe(fx.ex.spec, faults[i]));
            EXPECT_EQ(rep.predict(ov), plain);
            EXPECT_TRUE(rep.matches(ov, plain));
            // And against the *spec* observations (disagreeing whenever the
            // fault is visible on this case).
            const auto spec_obs = observe(fx.ex.spec, tc.inputs);
            EXPECT_EQ(rep.matches(ov, spec_obs), plain == spec_obs);
        }
    }
}

/// Field-wise equality of two diagnosis results (additional-test records
/// compared by inputs/outputs/elimination, not wall-clock).
void expect_same_result(const diagnosis_result& a,
                        const diagnosis_result& b) {
    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.initial_diagnoses, b.initial_diagnoses);
    EXPECT_EQ(a.final_diagnoses, b.final_diagnoses);
    EXPECT_EQ(a.used_escalation, b.used_escalation);
    EXPECT_EQ(a.used_fallback_search, b.used_fallback_search);
    ASSERT_EQ(a.additional_tests.size(), b.additional_tests.size());
    for (std::size_t i = 0; i < a.additional_tests.size(); ++i) {
        const auto& ra = a.additional_tests[i];
        const auto& rb = b.additional_tests[i];
        EXPECT_EQ(ra.tc.inputs, rb.tc.inputs);
        EXPECT_EQ(ra.purpose, rb.purpose);
        EXPECT_EQ(ra.expected, rb.expected);
        EXPECT_EQ(ra.observed, rb.observed);
        EXPECT_EQ(ra.eliminated, rb.eliminated);
        EXPECT_EQ(ra.from_fallback, rb.from_fallback);
    }
}

TEST(replay_cache, diagnose_identical_with_cache_on_and_off_paper) {
    const auto ex = paperex::make_paper_example();
    diagnoser_options with_cache;
    diagnoser_options without_cache;
    without_cache.use_replay_cache = false;

    for (const auto& fault : enumerate_all_faults(ex.spec)) {
        SCOPED_TRACE(describe(ex.spec, fault));
        simulated_iut iut_a(ex.spec, fault);
        simulated_iut iut_b(ex.spec, fault);
        expect_same_result(diagnose(ex.spec, ex.suite, iut_a, with_cache),
                           diagnose(ex.spec, ex.suite, iut_b,
                                    without_cache));
    }
}

TEST(replay_cache, diagnose_identical_both_evaluation_modes) {
    const auto ex = paperex::make_paper_example();
    for (const auto mode : {evaluation_mode::paper_flag_routing,
                            evaluation_mode::complete}) {
        diagnoser_options with_cache;
        with_cache.evaluation = mode;
        diagnoser_options without_cache = with_cache;
        without_cache.use_replay_cache = false;
        simulated_iut iut_a(ex.spec, ex.fault);
        simulated_iut iut_b(ex.spec, ex.fault);
        expect_same_result(diagnose(ex.spec, ex.suite, iut_a, with_cache),
                           diagnose(ex.spec, ex.suite, iut_b,
                                    without_cache));
    }
}

TEST(replay_cache, randomized_diagnose_equivalence_20_systems) {
    diagnoser_options with_cache;
    diagnoser_options without_cache;
    without_cache.use_replay_cache = false;

    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        rng random(seed);
        random_system_options opts;
        opts.machines = 2;
        opts.states_per_machine = 3;
        opts.extra_transitions = 4;
        const system sys = random_system(opts, random);
        test_suite suite = transition_tour(sys).suite;
        rng walk(seed + 1000);
        suite.extend(random_walk_suite(
            sys, walk, {.cases = 2, .steps_per_case = 8}));

        auto faults = enumerate_all_faults(sys);
        // Every 5th fault keeps the test fast while covering output,
        // transfer and both-fault kinds across all machines.
        for (std::size_t i = 0; i < faults.size(); i += 5) {
            SCOPED_TRACE("seed " + std::to_string(seed) + ", " +
                         describe(sys, faults[i]));
            simulated_iut iut_a(sys, faults[i]);
            simulated_iut iut_b(sys, faults[i]);
            expect_same_result(diagnose(sys, suite, iut_a, with_cache),
                               diagnose(sys, suite, iut_b, without_cache));
        }
    }
}

TEST(replay_cache, campaign_entries_identical_with_cache_on_and_off) {
    rng random(42);
    random_system_options opts;
    opts.machines = 2;
    opts.states_per_machine = 3;
    opts.extra_transitions = 5;
    const system sys = random_system(opts, random);
    const test_suite suite = transition_tour(sys).suite;
    auto faults = enumerate_all_faults(sys);
    if (faults.size() > 40) faults.resize(40);

    campaign_options on;
    campaign_options off;
    off.diag.use_replay_cache = false;

    campaign_engine engine_on(sys, suite, faults, on);
    campaign_engine engine_off(sys, suite, faults, off);
    const campaign_stats& a = engine_on.run();
    const campaign_stats& b = engine_off.run();

    ASSERT_EQ(a.entries.size(), b.entries.size());
    for (std::size_t i = 0; i < a.entries.size(); ++i) {
        SCOPED_TRACE("fault #" + std::to_string(i) + ": " +
                     describe(sys, a.entries[i].fault));
        EXPECT_EQ(a.entries[i], b.entries[i]);
    }
    EXPECT_EQ(engine_on.metrics().replays, engine_off.metrics().replays);
    EXPECT_TRUE(engine_on.metrics().replay_cache_enabled);
    EXPECT_FALSE(engine_off.metrics().replay_cache_enabled);
    // The cache must actually engage (and save simulation work) on any
    // campaign with detected faults.
    if (a.detected > 0) {
        EXPECT_GT(engine_on.metrics().cache_case_skips +
                      engine_on.metrics().cache_suffix_replays,
                  0u);
        EXPECT_LT(engine_on.metrics().simulated_steps,
                  engine_off.metrics().simulated_steps);
        EXPECT_EQ(engine_off.metrics().cache_case_skips, 0u);
        EXPECT_EQ(engine_off.metrics().cache_suffix_replays, 0u);
    }
}

TEST(replay_cache, multi_fault_diagnosis_identical_with_cache_on_and_off) {
    const auto ex = paperex::make_paper_example();
    // The paper's transfer fault plus a second fault on another transition.
    const auto all = enumerate_all_faults(ex.spec);
    const auto second =
        std::find_if(all.begin(), all.end(),
                     [&](const single_transition_fault& f) {
                         return f.target != ex.fault.target;
                     });
    ASSERT_NE(second, all.end());
    const fault_set fs{{ex.fault, *second}};

    multi_fault_options with_cache;
    with_cache.max_hypotheses = 3000;
    with_cache.max_additional_tests = 10;
    multi_fault_options without_cache = with_cache;
    without_cache.use_replay_cache = false;

    simulated_multi_iut iut_a(ex.spec, fs);
    simulated_multi_iut iut_b(ex.spec, fs);
    const auto a = diagnose_multi(ex.spec, ex.suite, iut_a, with_cache);
    const auto b = diagnose_multi(ex.spec, ex.suite, iut_b, without_cache);

    EXPECT_EQ(a.outcome, b.outcome);
    EXPECT_EQ(a.initial_hypotheses, b.initial_hypotheses);
    EXPECT_EQ(a.final_hypotheses, b.final_hypotheses);
    EXPECT_EQ(a.truncated_hypotheses, b.truncated_hypotheses);
    ASSERT_EQ(a.additional_tests.size(), b.additional_tests.size());
    for (std::size_t i = 0; i < a.additional_tests.size(); ++i) {
        EXPECT_EQ(a.additional_tests[i].tc.inputs,
                  b.additional_tests[i].tc.inputs);
        EXPECT_EQ(a.additional_tests[i].observed,
                  b.additional_tests[i].observed);
        EXPECT_EQ(a.additional_tests[i].eliminated,
                  b.additional_tests[i].eliminated);
    }
}

TEST(replay_cache, step_counter_is_monotone_and_counted_per_apply) {
    const auto ex = paperex::make_paper_example();
    const std::size_t before = simulated_steps();
    simulator sim(ex.spec);
    sim.reset();
    (void)sim.apply(ex.suite.cases[0].inputs[0]);
    (void)sim.apply(ex.suite.cases[0].inputs[1]);
    EXPECT_EQ(simulated_steps(), before + 2);
}

TEST(replay_cache, rejects_out_of_range_override) {
    const auto fx = paper_fixture::make();
    const spec_context ctx(fx.ex.spec, fx.ex.suite);
    const replay_cache cache = ctx.make_replay_cache(fx.report);
    transition_override bad;
    bad.target = {machine_id{99}, transition_id{0}};
    bad.output = symbol{};
    EXPECT_THROW((void)cache.consistent(bad), error);
}

}  // namespace
}  // namespace cfsmdiag
