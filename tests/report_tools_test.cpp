// Tests for util/json, diag/report, testgen/reduce, testgen/mutation.
#include <gtest/gtest.h>

#include "helpers.hpp"

namespace cfsmdiag {
namespace {

using testing_helpers::make_pair_system;
using testing_helpers::tid;

TEST(json_test, scalar_rendering) {
    EXPECT_EQ(json_value::null().dump(), "null");
    EXPECT_EQ(json_value::boolean(true).dump(), "true");
    EXPECT_EQ(json_value::number(std::int64_t{-3}).dump(), "-3");
    EXPECT_EQ(json_value::number(2.5).dump(), "2.5");
    EXPECT_EQ(json_value::string("hi").dump(), "\"hi\"");
}

TEST(json_test, escaping) {
    EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(json_value::string("\t\x01").dump(), "\"\\t\\u0001\"");
}

TEST(json_test, nested_structures_and_key_order) {
    auto obj = json_value::object();
    obj.set("b", json_value::number(std::size_t{1}));
    obj.set("a", json_value::number(std::size_t{2}));
    auto arr = json_value::array();
    arr.push(json_value::string("x"));
    arr.push(json_value::null());
    obj.set("list", std::move(arr));
    // Insertion order preserved; duplicate set replaces in place.
    obj.set("b", json_value::number(std::size_t{7}));
    EXPECT_EQ(obj.dump(), R"({"b":7,"a":2,"list":["x",null]})");
}

TEST(json_test, pretty_print_has_indentation) {
    auto obj = json_value::object();
    obj.set("k", json_value::string("v"));
    const std::string pretty = obj.dump(true);
    EXPECT_NE(pretty.find("\n  \"k\": \"v\"\n"), std::string::npos);
}

TEST(json_test, type_misuse_throws) {
    auto arr = json_value::array();
    EXPECT_THROW(arr.set("k", json_value::null()), error);
    auto obj = json_value::object();
    EXPECT_THROW(obj.push(json_value::null()), error);
}

TEST(report_test, diagnosis_report_contains_key_fields) {
    const auto ex = paperex::make_paper_example();
    simulated_iut iut(ex.spec, ex.fault);
    diagnoser_options opts;
    opts.evaluation = evaluation_mode::paper_flag_routing;
    const auto result = diagnose(ex.spec, ex.suite, iut, opts);
    const std::string json = report_to_json(ex.spec, result).dump();

    EXPECT_NE(json.find("\"outcome\":\"localized\""), std::string::npos);
    EXPECT_NE(json.find("\"step6_case\":\"Case 5\""), std::string::npos);
    EXPECT_NE(json.find("\"ust\":\"M1.t7\""), std::string::npos);
    EXPECT_NE(json.find("\"transition\":\"M3.t''4\""), std::string::npos);
    EXPECT_NE(json.find("\"faulty_next\":\"s0\""), std::string::npos);
    EXPECT_NE(json.find("\"used_escalation\":false"), std::string::npos);
}

TEST(report_test, multi_fault_report_renders) {
    const system sys = make_pair_system();
    const fault_set truth{{
        {tid(sys, 0, "a2"), sys.symbols().lookup("ok"), std::nullopt},
        {tid(sys, 1, "b5"), sys.symbols().lookup("r2"), std::nullopt},
    }};
    simulated_multi_iut iut(sys, truth);
    test_suite suite = transition_tour(sys).suite;
    rng wr(5);
    suite.extend(random_walk_suite(sys, wr,
                                   {.cases = 4, .steps_per_case = 8}));
    const auto result = diagnose_multi(sys, suite, iut);
    const std::string json = report_to_json(sys, result).dump();
    EXPECT_NE(json.find("\"initial_hypotheses\""), std::string::npos);
    EXPECT_NE(json.find("\"final_hypotheses\""), std::string::npos);
}

TEST(reduce_test, keeps_detection_power) {
    const system sys = make_pair_system();
    // A deliberately redundant suite: W suite + tour + walks.
    test_suite fat = per_machine_w_suite(sys).suite;
    fat.extend(transition_tour(sys).suite);
    rng wr(2);
    fat.extend(random_walk_suite(sys, wr,
                                 {.cases = 6, .steps_per_case = 10}));

    const auto faults = enumerate_all_faults(sys);
    const auto reduced = reduce_suite(sys, fat, faults);
    EXPECT_LT(reduced.cases_after, reduced.cases_before);

    for (const auto& f : faults) {
        EXPECT_EQ(detects(sys, fat, f), detects(sys, reduced.suite, f))
            << describe(sys, f);
    }
}

TEST(reduce_test, reports_undetectable_faults) {
    const system sys = make_pair_system();
    test_suite tiny;
    tiny.add(parse_compact("t", "R, x1", sys.symbols()));
    const auto faults = enumerate_all_faults(sys);
    const auto reduced = reduce_suite(sys, tiny, faults);
    EXPECT_GT(reduced.undetected_faults, 0u);
    EXPECT_EQ(reduced.cases_after, 1u);
}

TEST(reduce_test, empty_suite_is_fine) {
    const system sys = make_pair_system();
    const auto reduced =
        reduce_suite(sys, {}, enumerate_all_faults(sys));
    EXPECT_EQ(reduced.cases_after, 0u);
    EXPECT_EQ(reduced.undetected_faults,
              enumerate_all_faults(sys).size());
}

TEST(mutation_test, strong_suite_scores_high) {
    const system sys = make_pair_system();
    const auto dx = apriori_diagnostic_suite(sys);
    const auto report = mutation_score(sys, dx.suite);
    EXPECT_EQ(report.mutants, enumerate_all_faults(sys).size());
    EXPECT_TRUE(report.survivors.empty())
        << describe(sys, report.survivors.front());
    EXPECT_DOUBLE_EQ(report.score(), 1.0);
}

TEST(mutation_test, weak_suite_reports_survivors) {
    const system sys = make_pair_system();
    test_suite tiny;
    tiny.add(parse_compact("t", "R, x1", sys.symbols()));
    const auto report = mutation_score(sys, tiny);
    EXPECT_FALSE(report.survivors.empty());
    EXPECT_LT(report.score(), 1.0);
    // Survivors are genuinely killable: a splitting sequence exists.
    for (const auto& f : report.survivors) {
        EXPECT_TRUE(splitting_sequence(sys, {{}, {f.to_override()}})
                        .has_value())
            << describe(sys, f);
    }
}

TEST(mutation_test, equivalent_mutants_excluded_from_denominator) {
    // System with twin states: the transfer-to-twin mutant is equivalent.
    symbol_table t;
    fsm_builder a("A", t);
    a.state("s0").state("s1").state("s2");
    a.external("a1", "s0", "x", "go", "s1");
    a.external("a2", "s1", "x", "loop", "s1");
    a.external("a3", "s2", "x", "loop", "s2");
    fsm_builder b("B", t);
    b.external("b1", "q0", "y", "r", "q0");
    std::vector<fsm> machines;
    machines.push_back(a.build("s0"));
    machines.push_back(b.build("q0"));
    const system sys("twin", std::move(t), std::move(machines));

    const auto suite = per_machine_w_suite(sys).suite;
    const auto report = mutation_score(sys, suite);
    EXPECT_FALSE(report.equivalent.empty());
    for (const auto& f : report.equivalent) {
        EXPECT_FALSE(splitting_sequence(sys, {{}, {f.to_override()}})
                         .has_value())
            << describe(sys, f);
    }
}

}  // namespace
}  // namespace cfsmdiag
