// The unreliable-lab stack: seeded fault injection (flaky_sut), retrying
// and voting execution (resilient_oracle), quarantine-aware diagnosis
// degradation, the crash-isolated campaign engine, and the simulator /
// async livelock budgets.
//
// The load-bearing properties:
//   - determinism: a flaky stack with a fixed seed misbehaves identically
//     on every run and every thread count (campaign entries byte-identical
//     for any --jobs),
//   - recovery: at realistic flakiness, retry + voting reaches the same
//     verdict the clean lab reaches,
//   - honesty: when the lab is too unreliable to trust, the diagnoser says
//     `inconclusive_unreliable` instead of guessing — degradation never
//     shows up as a detection or a misdiagnosis,
//   - isolation: one fault's crash (or blown budget) becomes one `errored`
//     entry; every other entry is unaffected.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cfsmdiag.hpp"
#include "helpers.hpp"

namespace cfsmdiag {
namespace {

using paperex::make_paper_example;

/// Runs every suite case through `sut` and renders the interaction log —
/// observations and thrown lab faults alike — as one comparable string.
std::string interaction_log(const system& spec, const test_suite& suite,
                            sut_connection& sut) {
    std::string log;
    for (const auto& tc : suite.cases) {
        for (const auto& in : tc.inputs) {
            if (in.action == global_input::kind::reset) {
                try {
                    sut.reset();
                    log += "R;";
                } catch (const transient_error&) {
                    log += "R!;";
                }
                continue;
            }
            try {
                log += to_string(sut.apply(in.port, in.input),
                                 spec.symbols()) +
                       ";";
            } catch (const timeout_error&) {
                log += "hang;";
            } catch (const transient_error&) {
                log += "fail;";
            }
        }
    }
    return log;
}

TEST(flaky_sut_test, same_seed_reproduces_the_same_corruptions) {
    const auto ex = make_paper_example();
    const auto profile = flakiness_profile::uniform(0.3, 42);

    simulator_sut raw_a(ex.spec, ex.fault);
    flaky_sut flaky_a(raw_a, ex.spec, profile);
    simulator_sut raw_b(ex.spec, ex.fault);
    flaky_sut flaky_b(raw_b, ex.spec, profile);

    const std::string log_a = interaction_log(ex.spec, ex.suite, flaky_a);
    EXPECT_EQ(log_a, interaction_log(ex.spec, ex.suite, flaky_b));
    EXPECT_EQ(flaky_a.counters().total(), flaky_b.counters().total());
    EXPECT_GT(flaky_a.counters().total(), 0u);

    auto other = profile;
    other.seed = 43;
    simulator_sut raw_c(ex.spec, ex.fault);
    flaky_sut flaky_c(raw_c, ex.spec, other);
    EXPECT_NE(log_a, interaction_log(ex.spec, ex.suite, flaky_c));
}

TEST(flaky_sut_test, inactive_profile_is_transparent) {
    const auto ex = make_paper_example();
    simulator_sut raw(ex.spec, ex.fault);
    flaky_sut flaky(raw, ex.spec, flakiness_profile{});
    ASSERT_FALSE(flakiness_profile{}.active());

    simulator_sut reference(ex.spec, ex.fault);
    EXPECT_EQ(interaction_log(ex.spec, ex.suite, flaky),
              interaction_log(ex.spec, ex.suite, reference));
    EXPECT_EQ(flaky.counters().total(), 0u);
}

TEST(resilient_oracle_test, recovers_the_clean_verdict_at_low_flakiness) {
    const auto ex = make_paper_example();
    const test_suite suite = transition_tour(ex.spec).suite;

    simulated_iut clean_iut(ex.spec, ex.fault);
    const diagnosis_result clean = diagnose(ex.spec, suite, clean_iut);
    ASSERT_TRUE(clean.is_localized());

    simulator_sut raw(ex.spec, ex.fault);
    flaky_sut flaky(raw, ex.spec, flakiness_profile::uniform(0.05, 11));
    resilient_oracle oracle(flaky, retry_policy{});
    const diagnosis_result noisy = diagnose(ex.spec, suite, oracle);

    EXPECT_EQ(noisy.outcome, clean.outcome);
    EXPECT_EQ(noisy.final_diagnoses, clean.final_diagnoses);
    // The lab did misbehave; the retry layer absorbed it.
    EXPECT_GT(flaky.counters().total(), 0u);
}

TEST(resilient_oracle_test, every_attempt_failing_raises_transient_error) {
    const auto ex = make_paper_example();
    simulator_sut raw(ex.spec, ex.fault);
    flakiness_profile profile;
    profile.hang_rate = 1.0;  // every apply() times out
    flaky_sut flaky(raw, ex.spec, profile);
    resilient_oracle oracle(flaky, retry_policy{});

    EXPECT_THROW((void)oracle.execute(ex.suite.cases[0].inputs),
                 transient_error);
    ASSERT_NE(oracle.reliability_totals(), nullptr);
    EXPECT_GT(oracle.reliability_totals()->transient_failures, 0u);
}

TEST(resilient_oracle_test, blown_input_budget_is_fatal) {
    const auto ex = make_paper_example();
    simulator_sut raw(ex.spec, ex.fault);
    retry_policy policy;
    policy.max_case_inputs = 1;
    resilient_oracle oracle(raw, policy);

    EXPECT_THROW((void)oracle.execute(ex.suite.cases[0].inputs),
                 budget_exceeded);
}

TEST(degradation_test, clean_spec_under_heavy_flakiness_never_misdiagnoses) {
    const auto ex = make_paper_example();
    const test_suite suite = transition_tour(ex.spec).suite;

    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        simulator_sut raw(ex.spec);  // fault-free IUT
        flaky_sut flaky(raw, ex.spec, flakiness_profile::uniform(0.5, seed));
        resilient_oracle oracle(flaky, retry_policy{});
        const diagnosis_result r = diagnose(ex.spec, suite, oracle);

        // Whatever the noise produced, the diagnoser must not claim to have
        // localized a fault in a correct implementation.  Refusing
        // (inconclusive_unreliable) and rejecting the fault model
        // (no_consistent_hypothesis — heavy drops can vote fake ε symptoms
        // into a trusted run) are both honest; localizing is not.
        EXPECT_FALSE(r.is_localized()) << "seed " << seed;
        if (r.outcome != diagnosis_outcome::passed &&
            !r.reliability.degraded()) {
            EXPECT_EQ(r.outcome,
                      diagnosis_outcome::no_consistent_hypothesis)
                << "seed " << seed;
        }
    }
}

TEST(degradation_test, quarantined_runs_are_reported) {
    const auto ex = make_paper_example();
    const test_suite suite = transition_tour(ex.spec).suite;

    // Garble-only noise: garbled values scatter across the alphabet, so no
    // position can collect a k-majority and the run stays untrusted.
    simulator_sut raw(ex.spec, ex.fault);
    flakiness_profile profile;
    profile.garble_rate = 0.6;
    profile.seed = 3;
    flaky_sut flaky(raw, ex.spec, profile);
    retry_policy policy;
    policy.votes = 3;
    policy.max_retries = 0;
    resilient_oracle oracle(flaky, policy);
    const diagnosis_result r = diagnose(ex.spec, suite, oracle);

    EXPECT_TRUE(r.reliability.degraded());
    EXPECT_GT(r.reliability.untrusted_runs, 0u);
    EXPECT_FALSE(r.reliability.reasons.empty());
    EXPECT_FALSE(r.is_localized());
}

/// Two machines whose internal outputs form a message cycle: `go` at A
/// starts an m1/m2 ping-pong that never quiesces.  Invalid per the paper's
/// restrictions (validate_structure rejects it) but exactly what a mutated
/// or adversarial system can look like — the budgets exist for it.
system make_livelock_system() {
    symbol_table symbols;
    fsm_builder a("A", symbols);
    a.internal("a1", "s0", "go", "m1", "s0", machine_id{1});
    a.internal("a2", "s0", "m2", "m1", "s0", machine_id{1});
    fsm_builder b("B", symbols);
    b.internal("b1", "q0", "m1", "m2", "q0", machine_id{0});
    std::vector<fsm> machines;
    machines.push_back(a.build("s0"));
    machines.push_back(b.build("q0"));
    return system("livelock", std::move(symbols), std::move(machines));
}

TEST(budget_test, simulator_hop_budget_stops_internal_livelock) {
    const system sys = make_livelock_system();
    const auto go =
        global_input::at(machine_id{0}, sys.symbols().lookup("go"));

    simulator sim(sys);
    sim.reset();
    EXPECT_THROW((void)sim.apply(go), budget_exceeded);

    sim.set_internal_hop_budget(4);
    EXPECT_EQ(sim.internal_hop_budget(), 4u);
    sim.reset();
    EXPECT_THROW((void)sim.apply(go), budget_exceeded);
    EXPECT_THROW(sim.set_internal_hop_budget(0), error);
}

TEST(budget_test, async_drain_budget_stops_internal_livelock) {
    const system sys = make_livelock_system();
    const auto go =
        global_input::at(machine_id{0}, sys.symbols().lookup("go"));

    async_simulator sim(sys);
    sim.reset();
    sim.set_drain_budget(16);
    EXPECT_EQ(sim.drain_budget(), 16u);
    (void)sim.apply(go);
    EXPECT_THROW((void)sim.drain(), budget_exceeded);
    EXPECT_THROW(sim.set_drain_budget(0), error);
}

/// Figure-1 campaign fixture: the paper system, its transition tour, and a
/// capped slice of the fault universe (kept small — every test here runs
/// several campaigns).
struct figure1_campaign {
    system spec;
    test_suite suite;
    std::vector<single_transition_fault> faults;

    static figure1_campaign make(std::size_t max_faults) {
        auto ex = make_paper_example();
        test_suite suite = transition_tour(ex.spec).suite;
        auto faults = enumerate_all_faults(ex.spec);
        if (faults.size() > max_faults) faults.resize(max_faults);
        return {std::move(ex.spec), std::move(suite), std::move(faults)};
    }
};

TEST(resilient_campaign_test, flaky_entries_identical_across_thread_counts) {
    const auto fx = figure1_campaign::make(24);

    campaign_options serial;
    serial.max_faults = fx.faults.size();
    serial.flaky = flakiness_profile::uniform(0.05, 9);
    serial.retry.max_retries = 3;
    campaign_options parallel = serial;
    parallel.jobs = 4;
    parallel.seed = 123;  // shuffled execution order, identical output

    const auto a = run_campaign(fx.spec, fx.suite, fx.faults, serial);
    const auto b = run_campaign(fx.spec, fx.suite, fx.faults, parallel);
    ASSERT_EQ(a.entries.size(), b.entries.size());
    for (std::size_t i = 0; i < a.entries.size(); ++i) {
        EXPECT_EQ(a.entries[i], b.entries[i]) << "entry " << i;
    }
}

TEST(resilient_campaign_test, flaky_campaign_agrees_with_clean_campaign) {
    const auto fx = figure1_campaign::make(40);

    campaign_options clean;
    clean.max_faults = fx.faults.size();
    const auto cs = run_campaign(fx.spec, fx.suite, fx.faults, clean);

    campaign_options flk = clean;
    flk.flaky = flakiness_profile::uniform(0.05, 7);
    flk.retry.max_retries = 3;
    const auto fs = run_campaign(fx.spec, fx.suite, fx.faults, flk);

    ASSERT_EQ(cs.entries.size(), fs.entries.size());
    std::size_t agree = 0;
    for (std::size_t i = 0; i < cs.entries.size(); ++i) {
        const auto& c = cs.entries[i];
        const auto& f = fs.entries[i];
        EXPECT_FALSE(f.errored) << "entry " << i;
        if (f.outcome == c.outcome && f.sound == c.sound) {
            ++agree;
        } else {
            // Every disagreement must be an explicit refusal (or carry
            // quarantine evidence), never a silently different verdict.
            EXPECT_TRUE(
                f.outcome == diagnosis_outcome::inconclusive_unreliable ||
                f.quarantined_cases + f.quarantined_tests > 0)
                << "entry " << i;
        }
        // Never misdiagnose: a verdict offered under noise must be as
        // sound as the clean one.
        if (c.sound && f.detected) {
            EXPECT_TRUE(f.sound) << "entry " << i;
        }
    }
    // The acceptance bar: >= 95% of faults reach the clean verdict.
    EXPECT_GE(agree * 100, cs.entries.size() * 95);
}

TEST(resilient_campaign_test, worker_crash_is_isolated_to_one_entry) {
    const auto fx = figure1_campaign::make(12);

    campaign_options clean;
    clean.max_faults = fx.faults.size();
    const auto cs = run_campaign(fx.spec, fx.suite, fx.faults, clean);

    campaign_options crashing = clean;
    crashing.jobs = 2;
    crashing.fault_hook = [](std::size_t index) {
        if (index == 3) throw error("injected diagnose crash");
    };
    const auto fs = run_campaign(fx.spec, fx.suite, fx.faults, crashing);

    ASSERT_EQ(fs.entries.size(), cs.entries.size());
    EXPECT_EQ(fs.errored, 1u);
    EXPECT_TRUE(fs.entries[3].errored);
    EXPECT_EQ(fs.entries[3].error_kind, "error");
    EXPECT_NE(fs.entries[3].error_message.find("injected diagnose crash"),
              std::string::npos);
    EXPECT_FALSE(fs.entries[3].detected);
    EXPECT_FALSE(fs.entries[3].sound);
    for (std::size_t i = 0; i < fs.entries.size(); ++i) {
        if (i == 3) continue;
        EXPECT_EQ(fs.entries[i], cs.entries[i]) << "entry " << i;
    }
}

TEST(resilient_campaign_test, blown_budget_becomes_an_errored_entry) {
    const auto fx = figure1_campaign::make(3);

    campaign_options opt;
    opt.max_faults = fx.faults.size();
    // Activate the resilient path without any actual injections...
    flakiness_profile profile;
    profile.drop_rate = 1e-12;
    opt.flaky = profile;
    // ...and make the very first case blow the per-case input budget.
    opt.retry.max_case_inputs = 1;
    const auto stats = run_campaign(fx.spec, fx.suite, fx.faults, opt);

    ASSERT_EQ(stats.entries.size(), fx.faults.size());
    EXPECT_EQ(stats.errored, stats.entries.size());
    for (const auto& entry : stats.entries) {
        EXPECT_TRUE(entry.errored);
        EXPECT_EQ(entry.error_kind, "budget");
    }
}

TEST(resilient_campaign_test, aggregates_count_reliability_buckets) {
    const auto fx = figure1_campaign::make(16);

    campaign_options opt;
    opt.max_faults = fx.faults.size();
    opt.flaky = flakiness_profile::uniform(0.05, 5);
    opt.retry.max_retries = 3;
    const auto stats = run_campaign(fx.spec, fx.suite, fx.faults, opt);

    EXPECT_EQ(stats.total, fx.faults.size());
    EXPECT_EQ(stats.errored, 0u);
    // Detected / inconclusive / errored partition what passed didn't take;
    // nothing is double-counted.
    std::size_t detected = 0, inconclusive = 0;
    std::size_t retries = 0, transients = 0, quarantined = 0;
    for (const auto& e : stats.entries) {
        if (e.detected) ++detected;
        if (e.outcome == diagnosis_outcome::inconclusive_unreliable)
            ++inconclusive;
        retries += e.retries;
        transients += e.transient_failures;
        quarantined += e.quarantined_cases + e.quarantined_tests;
    }
    EXPECT_EQ(stats.detected, detected);
    EXPECT_EQ(stats.inconclusive_unreliable, inconclusive);
    EXPECT_EQ(stats.retries, retries);
    EXPECT_EQ(stats.transient_failures, transients);
    EXPECT_EQ(stats.quarantined_runs, quarantined);
    // The flaky lab actually exercised the retry machinery somewhere.
    EXPECT_GT(retries + transients + quarantined, 0u);
}

}  // namespace
}  // namespace cfsmdiag
