// Unit tests for cfsm/system, cfsm/simulator, cfsm/trace: the global
// execution semantics of Section 2.1.
#include <gtest/gtest.h>

#include "helpers.hpp"

namespace cfsmdiag {
namespace {

using testing_helpers::at;
using testing_helpers::in;
using testing_helpers::make_pair_system;
using testing_helpers::render;
using testing_helpers::tid;

TEST(system_test, basic_accessors) {
    const system sys = make_pair_system();
    EXPECT_EQ(sys.machine_count(), 2u);
    EXPECT_EQ(sys.machine(machine_id{0}).name(), "A");
    EXPECT_EQ(sys.total_transitions(), 9u);
    EXPECT_EQ(sys.all_transitions().size(), 9u);
    EXPECT_EQ(sys.transition_label(tid(sys, 0, "a3")), "A.a3");
    EXPECT_THROW((void)sys.machine(machine_id{5}), error);
}

TEST(simulator_test, reset_returns_null_and_restores_initials) {
    const system sys = make_pair_system();
    simulator sim(sys);
    (void)sim.apply(in(sys, 1, "x"));
    EXPECT_EQ(sim.state().states[0], state_id{1});
    const observation obs = sim.apply(global_input::reset());
    EXPECT_TRUE(obs.is_null());
    EXPECT_EQ(sim.state().states[0], state_id{0});
    EXPECT_EQ(sim.state().states[1], state_id{0});
}

TEST(simulator_test, external_transition_emits_at_own_port) {
    const system sys = make_pair_system();
    simulator sim(sys);
    EXPECT_EQ(sim.apply(in(sys, 1, "x")), at(sys, 1, "ok"));
    EXPECT_EQ(sim.apply(in(sys, 1, "x")), at(sys, 1, "ok2"));
}

TEST(simulator_test, internal_transition_observed_at_receiver_port) {
    const system sys = make_pair_system();
    simulator sim(sys);
    // a3 sends msg1 to B in q0 → b1 fires r1@P2 and B moves to q1.
    EXPECT_EQ(sim.apply(in(sys, 1, "send")), at(sys, 2, "r1"));
    EXPECT_EQ(sim.state().states[1], state_id{1});
    // Again: B is now in q1 → b3 fires r2@P2 and B returns to q0.
    EXPECT_EQ(sim.apply(in(sys, 1, "send")), at(sys, 2, "r2"));
    EXPECT_EQ(sim.state().states[1], state_id{0});
}

TEST(simulator_test, unspecified_input_yields_epsilon_and_keeps_state) {
    const system sys = make_pair_system();
    simulator sim(sys);
    // 'y' is only defined in B; applying it at port 1 is unspecified.
    const observation obs = sim.apply(in(sys, 1, "y"));
    EXPECT_TRUE(obs.is_null());
    EXPECT_EQ(sim.state().states[0], state_id{0});

    // msg2 is not defined for A at all.
    EXPECT_TRUE(sim.apply(in(sys, 1, "msg2")).is_null());
}

TEST(simulator_test, fired_records_the_chain) {
    const system sys = make_pair_system();
    simulator sim(sys);
    std::vector<global_transition_id> fired;
    (void)sim.apply(in(sys, 1, "send"), &fired);
    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(sys.transition_label(fired[0]), "A.a3");
    EXPECT_EQ(sys.transition_label(fired[1]), "B.b1");

    // B moved to q1 above; reset so that y@P2 (defined at q0) fires b5.
    (void)sim.apply(global_input::reset());
    fired.clear();
    (void)sim.apply(in(sys, 2, "y"), &fired);
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(sys.transition_label(fired[0]), "B.b5");
}

TEST(simulator_test, override_changes_output_and_next_state) {
    const system sys = make_pair_system();
    // a1 normally emits ok and moves to p1; override: emits ok2, stays p0.
    const transition_override ov{tid(sys, 0, "a1"),
                                 sys.symbols().lookup("ok2"), state_id{0}};
    simulator sim(sys, ov);
    EXPECT_EQ(sim.apply(in(sys, 1, "x")), at(sys, 1, "ok2"));
    EXPECT_EQ(sim.state().states[0], state_id{0});
    // Applying x again repeats a1 (we stayed in p0).
    EXPECT_EQ(sim.apply(in(sys, 1, "x")), at(sys, 1, "ok2"));
}

TEST(simulator_test, override_on_internal_output_redirects_receiver) {
    const system sys = make_pair_system();
    // a3 sends msg2 instead of msg1: B in q0 fires b2 (r2) instead of b1.
    const transition_override ov{tid(sys, 0, "a3"),
                                 sys.symbols().lookup("msg2"), std::nullopt};
    simulator sim(sys, ov);
    EXPECT_EQ(sim.apply(in(sys, 1, "send")), at(sys, 2, "r2"));
    EXPECT_EQ(sim.state().states[1], state_id{0});
}

TEST(simulator_test, run_from_reset_matches_observe) {
    const system sys = make_pair_system();
    const std::vector<global_input> seq{
        global_input::reset(), in(sys, 1, "x"), in(sys, 1, "send"),
        in(sys, 2, "y")};
    simulator sim(sys);
    EXPECT_EQ(sim.run_from_reset(seq), observe(sys, seq));
    EXPECT_EQ(render(sys, observe(sys, seq)), "-, ok@P1, r2@P2, r1@P2");
}

TEST(simulator_test, set_state_validates) {
    const system sys = make_pair_system();
    simulator sim(sys);
    system_state bad;
    bad.states = {state_id{0}};
    EXPECT_THROW(sim.set_state(bad), error);
    bad.states = {state_id{0}, state_id{7}};
    EXPECT_THROW(sim.set_state(bad), error);
}

TEST(simulator_test, apply_epsilon_input_rejected) {
    const system sys = make_pair_system();
    simulator sim(sys);
    EXPECT_THROW((void)sim.apply(global_input::at(machine_id{0},
                                                  symbol::epsilon())),
                 error);
}

TEST(simulator_test, invalid_override_rejected_at_construction) {
    const system sys = make_pair_system();
    EXPECT_THROW(simulator(sys, transition_override{
                                    {machine_id{9}, transition_id{0}},
                                    std::nullopt, state_id{0}}),
                 error);
    EXPECT_THROW(simulator(sys, transition_override{tid(sys, 0, "a1"),
                                                    std::nullopt,
                                                    state_id{9}}),
                 error);
}

TEST(trace_test, explain_records_expected_and_fired) {
    const system sys = make_pair_system();
    const std::vector<global_input> seq{global_input::reset(),
                                        in(sys, 1, "send"),
                                        in(sys, 1, "msg1")};
    const auto steps = explain(sys, seq);
    ASSERT_EQ(steps.size(), 3u);
    EXPECT_EQ(fired_label(sys, steps[0]), "tr");
    EXPECT_EQ(fired_label(sys, steps[1]), "a3 b1");
    EXPECT_EQ(fired_label(sys, steps[2]), "-");  // unspecified
    EXPECT_TRUE(steps[2].expected.is_null());
}

TEST(to_string_test, inputs_and_observations_render_compactly) {
    const system sys = make_pair_system();
    EXPECT_EQ(to_string(global_input::reset(), sys.symbols()), "R");
    EXPECT_EQ(to_string(in(sys, 1, "x"), sys.symbols()), "x@P1");
    EXPECT_EQ(to_string(observation::none(), sys.symbols()), "-");
    EXPECT_EQ(to_string(at(sys, 2, "r1"), sys.symbols()), "r1@P2");
}

TEST(system_test, with_transition_replaced_copies) {
    const system sys = make_pair_system();
    const system mutated = sys.with_transition_replaced(
        tid(sys, 0, "a1"), sys.symbols().lookup("ok2"), std::nullopt);
    EXPECT_EQ(observe(mutated, {in(sys, 1, "x")}).front(),
              at(sys, 1, "ok2"));
    EXPECT_EQ(observe(sys, {in(sys, 1, "x")}).front(), at(sys, 1, "ok"));
}

}  // namespace
}  // namespace cfsmdiag
