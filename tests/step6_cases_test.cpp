// Tests for the paper's Step 6 case classification (Cases 1-5).
#include <gtest/gtest.h>

#include "helpers.hpp"

namespace cfsmdiag {
namespace {

using testing_helpers::in;
using testing_helpers::make_pair_system;
using testing_helpers::tid;

/// Runs Steps 1-5 (paper routing) and classifies.
step6_case classify(const system& spec, const test_suite& suite,
                    const single_transition_fault& fault) {
    simulated_iut iut(spec, fault);
    const auto report = collect_symptoms(spec, suite, iut);
    if (!report.has_symptoms()) return step6_case::none;
    const auto confl = generate_conflict_sets(spec, report);
    const auto cands = generate_candidates(spec, report, confl);
    const auto dc = evaluate_candidates(spec, suite, report, cands);
    return classify_step6(dc);
}

TEST(step6_case_test, paper_example_is_case5) {
    const auto ex = paperex::make_paper_example();
    EXPECT_EQ(classify(ex.spec, ex.suite, ex.fault), step6_case::case5);
}

TEST(step6_case_test, lone_ust_output_fault_is_case1) {
    // One-transition-deep test: the only candidate is the ust itself.
    const system sys = make_pair_system();
    const single_transition_fault f{
        tid(sys, 1, "b5"), sys.symbols().lookup("r2"), std::nullopt};
    test_suite suite;
    suite.add(parse_compact("tc", "R, y2", sys.symbols()));
    EXPECT_EQ(classify(sys, suite, f), step6_case::case1);
}

TEST(step6_case_test, transfer_only_candidate_is_case3_or_4) {
    // A transfer fault whose symptom appears downstream of the faulty
    // transition: the ust is the downstream transition, which replay clears
    // (its output hypothesis is inconsistent), leaving transfer candidates.
    const system sys = make_pair_system();
    const single_transition_fault f{tid(sys, 0, "a1"), std::nullopt,
                                    state_id{0}};
    test_suite suite;
    suite.add(parse_compact("tc", "R, x1, x1", sys.symbols()));
    const auto c = classify(sys, suite, f);
    EXPECT_TRUE(c == step6_case::case3 || c == step6_case::case4 ||
                c == step6_case::case5)
        << to_string(c);
}

TEST(step6_case_test, to_string_covers_all) {
    EXPECT_EQ(to_string(step6_case::none), "none");
    EXPECT_EQ(to_string(step6_case::case1), "Case 1");
    EXPECT_EQ(to_string(step6_case::case2), "Case 2");
    EXPECT_EQ(to_string(step6_case::case3), "Case 3");
    EXPECT_EQ(to_string(step6_case::case4), "Case 4");
    EXPECT_EQ(to_string(step6_case::case5), "Case 5");
}

TEST(step6_case_test, distribution_over_paper_example_campaign) {
    // Every detected fault of the Figure-1 system lands in a defined case
    // (or `none`, which the diagnoser's escalation covers).
    const auto ex = paperex::make_paper_example();
    const test_suite suite = transition_tour(ex.spec).suite;
    std::size_t defined = 0, none = 0;
    auto faults = enumerate_all_faults(ex.spec);
    for (const auto& f : faults) {
        if (!detects(ex.spec, suite, f)) continue;
        const auto c = classify(ex.spec, suite, f);
        if (c == step6_case::none) {
            ++none;
        } else {
            ++defined;
        }
    }
    EXPECT_GT(defined, 0u);
    // The paper's routing leaves a small residue of corner cases (see
    // DESIGN.md §5) — they must be a minority.
    EXPECT_LT(none, defined);
}

}  // namespace
}  // namespace cfsmdiag
