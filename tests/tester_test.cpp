// Tests for the distributed test architecture (tester/).
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "tester/coordinator.hpp"

namespace cfsmdiag {
namespace {

using testing_helpers::in;
using testing_helpers::make_pair_system;
using testing_helpers::tid;

TEST(sut_test, simulator_sut_reproduces_simulator) {
    const system sys = make_pair_system();
    simulator_sut sut(sys);
    EXPECT_EQ(sut.port_count(), 2u);
    sut.reset();
    EXPECT_EQ(sut.apply(machine_id{0}, sys.symbols().lookup("x")),
              testing_helpers::at(sys, 1, "ok"));
    EXPECT_EQ(sut.apply(machine_id{0}, sys.symbols().lookup("send")),
              testing_helpers::at(sys, 2, "r2"));
}

TEST(coordinator_test, runs_match_direct_observation) {
    const system sys = make_pair_system();
    const auto tour = transition_tour(sys).suite;
    simulator_sut sut(sys);
    test_coordinator coordinator(sut);
    for (const auto& tc : tour.cases) {
        EXPECT_EQ(coordinator.run(tc), observe(sys, tc.inputs));
    }
}

TEST(coordinator_test, counts_messages) {
    const system sys = make_pair_system();
    simulator_sut sut(sys);
    test_coordinator coordinator(sut);
    const test_case tc =
        parse_compact("tc", "R, x1, send1, y2", sys.symbols());
    (void)coordinator.run(tc);
    const auto& stats = coordinator.stats();
    EXPECT_EQ(stats.resets, 1u);
    EXPECT_EQ(stats.inputs_applied, 3u);
    EXPECT_EQ(stats.commands, 4u);   // reset + 3 inputs
    EXPECT_EQ(stats.reports, 3u);    // one per non-reset input
    EXPECT_EQ(stats.total_messages(), 7u);
}

TEST(coordinator_test, oracle_adapter_supports_full_diagnosis) {
    const system sys = make_pair_system();
    const single_transition_fault fault{
        tid(sys, 0, "a3"), sys.symbols().lookup("msg2"), std::nullopt};
    simulator_sut sut(sys, fault);
    coordinated_oracle oracle_(sut);
    const auto result =
        diagnose(sys, transition_tour(sys).suite, oracle_);
    ASSERT_TRUE(result.is_localized());
    EXPECT_EQ(result.final_diagnoses[0], fault);
    EXPECT_GT(oracle_.stats().total_messages(), 0u);
}

TEST(sync_analysis_test, same_port_chain_is_synchronizable) {
    const system sys = make_pair_system();
    // All inputs at P1; observations at P1 or P2, but the applier of each
    // next step (P1's tester) always applied the previous step itself.
    const test_case tc =
        parse_compact("tc", "R, x1, x1, send1", sys.symbols());
    const auto report = synchronization_analysis(sys, tc);
    EXPECT_TRUE(report.synchronizable());
}

TEST(sync_analysis_test, observer_handoff_is_synchronizable) {
    const system sys = make_pair_system();
    // send@P1 produces an output observed at P2, so P2's tester witnessed
    // the step and may apply the next input without explicit sync.
    const test_case tc =
        parse_compact("tc", "R, send1, y2", sys.symbols());
    const auto report = synchronization_analysis(sys, tc);
    EXPECT_TRUE(report.synchronizable());
}

TEST(sync_analysis_test, blind_handoff_needs_sync_message) {
    const system sys = make_pair_system();
    // x@P1 is observed at P1; the next input comes from P2's tester, which
    // witnessed nothing — an explicit sync message is required.
    const test_case tc = parse_compact("tc", "R, x1, y2", sys.symbols());
    const auto report = synchronization_analysis(sys, tc);
    ASSERT_EQ(report.unsynchronized_steps.size(), 1u);
    EXPECT_EQ(report.unsynchronized_steps[0], 2u);
}

TEST(sync_analysis_test, paper_table1_cases_need_coordination) {
    // Table 1's tc1 hops P1 → P3 → P1 → P2 → P3.  The hop into c'@P3
    // (step 2) and back into c@P1 (step 3) hand over to testers that
    // witnessed nothing of the previous step, so a decentralized run needs
    // explicit sync messages there — which is precisely why the paper
    // posits "coordinating procedures between the different external
    // ports" rather than independent testers.  The later hops (t@P2 after
    // an output at P2, x@P3 after an output at P3) are intrinsically
    // synchronized.
    const auto ex = paperex::make_paper_example();
    const auto r1 = synchronization_analysis(ex.spec, ex.suite.cases[0]);
    EXPECT_EQ(r1.unsynchronized_steps,
              (std::vector<std::size_t>{2, 3}));
    const auto r2 = synchronization_analysis(ex.spec, ex.suite.cases[1]);
    EXPECT_FALSE(r2.synchronizable());
}

TEST(sync_analysis_test, suite_counter_accumulates) {
    const system sys = make_pair_system();
    test_suite suite;
    suite.add(parse_compact("a", "R, x1, y2", sys.symbols()));   // 1 sync
    suite.add(parse_compact("b", "R, send1, y2", sys.symbols()));  // 0
    EXPECT_EQ(count_sync_messages(sys, suite), 1u);
}

}  // namespace
}  // namespace cfsmdiag
