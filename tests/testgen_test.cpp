// Unit tests for testgen: test cases, tours, W suites, random walks, stats.
#include <gtest/gtest.h>

#include <set>

#include "helpers.hpp"

namespace cfsmdiag {
namespace {

using testing_helpers::in;
using testing_helpers::make_pair_system;
using testing_helpers::tid;

TEST(test_case_test, from_inputs_prepends_reset_once) {
    const system sys = make_pair_system();
    const test_case tc1 =
        test_case::from_inputs("t", {in(sys, 1, "x")});
    ASSERT_EQ(tc1.inputs.size(), 2u);
    EXPECT_EQ(tc1.inputs[0].action, global_input::kind::reset);

    const test_case tc2 = test_case::from_inputs(
        "t", {global_input::reset(), in(sys, 1, "x")});
    EXPECT_EQ(tc2.inputs.size(), 2u);
}

TEST(test_case_test, parse_compact_round_trips) {
    const system sys = make_pair_system();
    const test_case tc =
        parse_compact("tc", "R, x1, send1, y2", sys.symbols());
    ASSERT_EQ(tc.inputs.size(), 4u);
    EXPECT_EQ(tc.inputs[0].action, global_input::kind::reset);
    EXPECT_EQ(tc.inputs[1], in(sys, 1, "x"));
    EXPECT_EQ(tc.inputs[2], in(sys, 1, "send"));
    EXPECT_EQ(tc.inputs[3], in(sys, 2, "y"));
    EXPECT_EQ(to_string(tc, sys.symbols()), "R, x@P1, send@P1, y@P2");
}

TEST(test_case_test, parse_compact_rejects_malformed_tokens) {
    const system sys = make_pair_system();
    EXPECT_THROW((void)parse_compact("t", "x", sys.symbols()), error);
    EXPECT_THROW((void)parse_compact("t", "1", sys.symbols()), error);
    EXPECT_THROW((void)parse_compact("t", "nope1", sys.symbols()), error);
}

TEST(test_suite_test, totals_and_extend) {
    const system sys = make_pair_system();
    test_suite a;
    a.add(parse_compact("1", "R, x1", sys.symbols()));
    test_suite b;
    b.add(parse_compact("2", "R, x1, x1", sys.symbols()));
    a.extend(b);
    EXPECT_EQ(a.size(), 2u);
    EXPECT_EQ(a.total_inputs(), 5u);
}

TEST(tour_test, covers_every_transition) {
    const system sys = make_pair_system();
    const auto tour = transition_tour(sys);
    EXPECT_TRUE(tour.uncovered.empty());
    ASSERT_EQ(tour.suite.size(), 1u);

    // Re-execute and confirm every transition fires.
    std::set<global_transition_id> fired_all;
    simulator sim(sys);
    for (const auto& input : tour.suite.cases[0].inputs) {
        std::vector<global_transition_id> fired;
        (void)sim.apply(input, &fired);
        fired_all.insert(fired.begin(), fired.end());
    }
    EXPECT_EQ(fired_all.size(), sys.total_transitions());
}

TEST(tour_test, reports_unreachable_transitions) {
    // A machine with a transition out of an unreachable state.
    symbol_table t;
    fsm_builder ba("A", t);
    ba.external("a1", "s0", "x", "ok", "s0");
    ba.external("a2", "orphan", "x", "ok", "s0");
    fsm_builder bb("B", t);
    bb.external("b1", "q0", "z", "r", "q0");
    std::vector<fsm> machines;
    machines.push_back(ba.build("s0"));
    machines.push_back(bb.build("q0"));
    const system sys("sys", std::move(t), std::move(machines));

    const auto tour = transition_tour(sys);
    ASSERT_EQ(tour.uncovered.size(), 1u);
    EXPECT_EQ(sys.transition_label(tour.uncovered[0]), "A.a2");
}

TEST(tour_test, paper_example_tour_covers_all) {
    const auto ex = paperex::make_paper_example();
    const auto tour = transition_tour(ex.spec);
    EXPECT_TRUE(tour.uncovered.empty());
}

TEST(w_suite_test, per_machine_suite_has_case_per_transition_and_w) {
    const system sys = make_pair_system();
    const auto result = per_machine_w_suite(sys);
    EXPECT_TRUE(result.unreachable.empty());
    EXPECT_GE(result.suite.size(), sys.total_transitions());
    // Every case is R-prefixed.
    for (const auto& tc : result.suite.cases) {
        EXPECT_EQ(tc.inputs.front().action, global_input::kind::reset);
    }
}

TEST(w_suite_test, per_machine_suite_detects_all_output_faults) {
    const system sys = make_pair_system();
    const auto suite = per_machine_w_suite(sys).suite;
    for (const auto& f : enumerate_output_faults(sys)) {
        EXPECT_TRUE(detects(sys, suite, f)) << describe(sys, f);
    }
}

TEST(w_suite_test, product_suite_detects_all_single_faults) {
    const system sys = make_pair_system();
    const auto suite = product_w_suite(sys);
    for (const auto& f : enumerate_all_faults(sys)) {
        EXPECT_TRUE(detects(sys, suite, f)) << describe(sys, f);
    }
}

TEST(random_walk_test, deterministic_under_seed_and_well_formed) {
    const system sys = make_pair_system();
    rng r1(42), r2(42), r3(7);
    const random_walk_options opts{.cases = 4, .steps_per_case = 8};
    const auto s1 = random_walk_suite(sys, r1, opts);
    const auto s2 = random_walk_suite(sys, r2, opts);
    const auto s3 = random_walk_suite(sys, r3, opts);
    ASSERT_EQ(s1.size(), 4u);
    EXPECT_EQ(s1.total_inputs(), 4u * 9u);  // R + 8 steps each
    for (std::size_t i = 0; i < s1.size(); ++i)
        EXPECT_EQ(s1.cases[i].inputs, s2.cases[i].inputs);
    bool any_diff = false;
    for (std::size_t i = 0; i < s1.size(); ++i)
        any_diff = any_diff || s1.cases[i].inputs != s3.cases[i].inputs;
    EXPECT_TRUE(any_diff);
}

TEST(stats_test, counts_resets_and_port_distribution) {
    const system sys = make_pair_system();
    test_suite suite;
    suite.add(parse_compact("1", "R, x1, y2, x1", sys.symbols()));
    const auto stats = compute_stats(sys, suite);
    EXPECT_EQ(stats.cases, 1u);
    EXPECT_EQ(stats.total_inputs, 4u);
    EXPECT_EQ(stats.resets, 1u);
    ASSERT_EQ(stats.inputs_per_port.size(), 2u);
    EXPECT_EQ(stats.inputs_per_port[0], 2u);
    EXPECT_EQ(stats.inputs_per_port[1], 1u);
}

TEST(stats_test, detects_and_detection_rate) {
    const system sys = make_pair_system();
    test_suite suite;
    suite.add(parse_compact("1", "R, x1", sys.symbols()));
    const single_transition_fault visible{
        tid(sys, 0, "a1"), sys.symbols().lookup("ok2"), std::nullopt};
    const single_transition_fault hidden{
        tid(sys, 1, "b5"), sys.symbols().lookup("r2"), std::nullopt};
    EXPECT_TRUE(detects(sys, suite, visible));
    EXPECT_FALSE(detects(sys, suite, hidden));
    EXPECT_DOUBLE_EQ(detection_rate(sys, suite, {visible, hidden}), 0.5);
}

}  // namespace
}  // namespace cfsmdiag
