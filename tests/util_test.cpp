// Unit tests for util: rng, table rendering, string helpers, thread pool
// exception propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace cfsmdiag {
namespace {

TEST(rng_test, deterministic_per_seed) {
    rng a(1234), b(1234), c(999);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
    bool differs = false;
    rng a2(1234);
    for (int i = 0; i < 16; ++i) differs = differs || a2.next() != c.next();
    EXPECT_TRUE(differs);
}

TEST(rng_test, below_respects_bound) {
    rng r(7);
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(13), 13u);
    EXPECT_THROW((void)r.below(0), error);
}

TEST(rng_test, between_inclusive) {
    rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.between(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
    }
    EXPECT_EQ(r.between(3, 3), 3u);
    EXPECT_THROW((void)r.between(4, 3), error);
}

TEST(rng_test, chance_extremes) {
    rng r(7);
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
    // p = 0.5 should produce both outcomes in 100 draws.
    int heads = 0;
    for (int i = 0; i < 100; ++i) heads += r.chance(0.5) ? 1 : 0;
    EXPECT_GT(heads, 20);
    EXPECT_LT(heads, 80);
}

TEST(rng_test, pick_and_shuffle) {
    rng r(7);
    const std::vector<int> v{1, 2, 3};
    for (int i = 0; i < 50; ++i) {
        const int x = r.pick(v);
        EXPECT_TRUE(x >= 1 && x <= 3);
    }
    std::vector<int> big(100);
    for (int i = 0; i < 100; ++i) big[i] = i;
    auto shuffled = big;
    r.shuffle(shuffled);
    EXPECT_NE(shuffled, big);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, big);

    const std::vector<int> empty;
    EXPECT_THROW((void)r.pick(empty), error);
}

TEST(rng_test, split_produces_independent_stream) {
    rng a(42);
    rng child = a.split();
    EXPECT_NE(a.next(), child.next());
}

TEST(table_test, renders_aligned_columns) {
    text_table t({"name", "value"});
    t.add_row({"x", "1"});
    t.add_row({"longer", "22"});
    const std::string out = t.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer  22"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(table_test, short_rows_pad) {
    text_table t({"a", "b", "c"});
    t.add_row({"1"});
    EXPECT_NO_THROW((void)t.str());
}

TEST(csv_test, quotes_when_needed) {
    std::ostringstream os;
    csv_writer w(os);
    w.row({"plain", "with,comma", "with\"quote"});
    EXPECT_EQ(os.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(thread_pool_test, wait_rethrows_first_task_exception) {
    thread_pool pool(2);
    pool.submit([] { throw error("task failed"); });
    try {
        pool.wait();
        FAIL() << "wait() should rethrow the task's exception";
    } catch (const error& e) {
        EXPECT_NE(std::string(e.what()).find("task failed"),
                  std::string::npos);
    }
}

TEST(thread_pool_test, pool_is_reusable_after_a_failed_round) {
    thread_pool pool(2);
    pool.submit([] { throw error("round one fails"); });
    EXPECT_THROW(pool.wait(), error);

    std::atomic<int> ran{0};
    for (int i = 0; i < 16; ++i) pool.submit([&ran] { ++ran; });
    EXPECT_NO_THROW(pool.wait());
    EXPECT_EQ(ran.load(), 16);
}

TEST(parallel_for_test, serial_path_stops_at_the_throwing_index) {
    std::atomic<std::size_t> executed{0};
    EXPECT_THROW(parallel_for(100, 1,
                              [&executed](std::size_t i) {
                                  if (i == 3) throw error("stop");
                                  ++executed;
                              }),
                 error);
    EXPECT_EQ(executed.load(), 3u);
}

TEST(parallel_for_test, parallel_path_rethrows_and_cancels) {
    std::atomic<std::size_t> executed{0};
    EXPECT_THROW(parallel_for(100'000, 4,
                              [&executed](std::size_t i) {
                                  if (i == 0) throw error("stop");
                                  ++executed;
                              }),
                 error);
    // Index 0 threw instead of executing, and cancellation stops workers
    // from claiming new indices — the loop cannot have run everything.
    EXPECT_LT(executed.load(), 100'000u);
}

TEST(parallel_for_test, completes_all_indices_when_nothing_throws) {
    std::atomic<std::size_t> sum{0};
    parallel_for(1000, 4, [&sum](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 1000u * 999u / 2);
}

TEST(strings_test, join_split_trim) {
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ", "), "");
    const auto parts = split("a,,b", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(trim("  x  "), "x");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
}

}  // namespace
}  // namespace cfsmdiag
