// Unit tests for cfsm/alphabet and cfsm/validate: the Section 2.1 model
// restrictions.
#include <gtest/gtest.h>

#include "cfsm/validate.hpp"
#include "fsm/builder.hpp"
#include "helpers.hpp"

namespace cfsmdiag {
namespace {

using testing_helpers::make_pair_system;

system build_two(symbol_table symbols, fsm a, fsm b) {
    std::vector<fsm> machines;
    machines.push_back(std::move(a));
    machines.push_back(std::move(b));
    return system("sys", std::move(symbols), std::move(machines));
}

TEST(alphabet_test, pair_system_partitions) {
    const system sys = make_pair_system();
    const auto a = compute_alphabets(sys);
    // A: IEO = {x}, IIO→B = {send}, OIO→B = {msg1, msg2}, OEO = {ok, ok2}.
    EXPECT_EQ(a[0].ieo.size(), 1u);
    EXPECT_EQ(a[0].iio_to[1].size(), 1u);
    EXPECT_EQ(a[0].oio_to[1].size(), 2u);
    EXPECT_EQ(a[0].oeo.size(), 2u);
    // B: IEO = {msg1, msg2, y}, no internal transitions.
    EXPECT_EQ(a[1].ieo.size(), 3u);
    EXPECT_TRUE(a[1].iio.empty());
    // IEOq_{B<A} = {msg1, msg2}.
    EXPECT_EQ(a[1].ieoq_from[0].size(), 2u);
    EXPECT_TRUE(a[0].ieoq_from[1].empty());
}

TEST(validate_test, pair_system_is_valid) {
    EXPECT_TRUE(check_structure(make_pair_system()).empty());
    EXPECT_NO_THROW(validate_structure(make_pair_system()));
}

TEST(validate_test, rejects_input_in_both_ieo_and_iio) {
    symbol_table t;
    fsm_builder ba("A", t);
    ba.external("a1", "s0", "a", "x", "s0");
    ba.internal("a2", "s1", "a", "m", "s0", machine_id{1});
    ba.external("a3", "s0", "b", "x", "s1");
    fsm_builder bb("B", t);
    bb.external("b1", "q0", "m", "r", "q0");
    const system sys =
        build_two(std::move(t), ba.build("s0"), bb.build("q0"));
    const auto violations = check_structure(sys);
    ASSERT_FALSE(violations.empty());
    EXPECT_NE(violations[0].message.find("IEO ∩ IIO"), std::string::npos);
    EXPECT_THROW(validate_structure(sys), model_error);
}

TEST(validate_test, rejects_internal_input_with_two_destinations) {
    symbol_table t;
    fsm_builder ba("A", t);
    ba.internal("a1", "s0", "g", "m", "s1", machine_id{1});
    ba.internal("a2", "s1", "g", "n", "s0", machine_id{2});
    fsm_builder bb("B", t);
    bb.external("b1", "q0", "m", "r", "q0");
    fsm_builder bc("C", t);
    bc.external("c1", "u0", "n", "r", "u0");
    std::vector<fsm> machines;
    machines.push_back(ba.build("s0"));
    machines.push_back(bb.build("q0"));
    machines.push_back(bc.build("u0"));
    const system sys("sys", std::move(t), std::move(machines));
    const auto violations = check_structure(sys);
    ASSERT_FALSE(violations.empty());
    EXPECT_NE(violations[0].message.find("destination partition"),
              std::string::npos);
}

TEST(validate_test, rejects_message_not_handled_externally_by_receiver) {
    symbol_table t;
    fsm_builder ba("A", t);
    ba.internal("a1", "s0", "g", "mystery", "s0", machine_id{1});
    fsm_builder bb("B", t);
    bb.external("b1", "q0", "other", "r", "q0");
    const system sys =
        build_two(std::move(t), ba.build("s0"), bb.build("q0"));
    const auto violations = check_structure(sys);
    ASSERT_FALSE(violations.empty());
    EXPECT_NE(violations[0].message.find("OIO_{i>j} ⊆ IEO_j"),
              std::string::npos);
}

TEST(validate_test, rejects_self_addressed_internal_transition) {
    symbol_table t;
    fsm_builder ba("A", t);
    ba.internal("a1", "s0", "g", "m", "s0", machine_id{0});
    fsm_builder bb("B", t);
    bb.external("b1", "q0", "m", "r", "q0");
    const system sys =
        build_two(std::move(t), ba.build("s0"), bb.build("q0"));
    const auto violations = check_structure(sys);
    ASSERT_FALSE(violations.empty());
    EXPECT_NE(violations[0].message.find("own"), std::string::npos);
}

TEST(validate_test, rejects_out_of_range_destination) {
    symbol_table t;
    fsm_builder ba("A", t);
    ba.internal("a1", "s0", "g", "m", "s0", machine_id{7});
    fsm_builder bb("B", t);
    bb.external("b1", "q0", "m", "r", "q0");
    const system sys =
        build_two(std::move(t), ba.build("s0"), bb.build("q0"));
    EXPECT_FALSE(check_structure(sys).empty());
}

TEST(validate_test, rejects_epsilon_internal_message) {
    symbol_table t;
    fsm_builder ba("A", t);
    ba.internal("a1", "s0", "g", "-", "s0", machine_id{1});
    fsm_builder bb("B", t);
    bb.external("b1", "q0", "z", "r", "q0");
    const system sys =
        build_two(std::move(t), ba.build("s0"), bb.build("q0"));
    const auto violations = check_structure(sys);
    ASSERT_FALSE(violations.empty());
    EXPECT_NE(violations[0].message.find("non-ε"), std::string::npos);
}

TEST(validate_test, reports_all_violations_not_just_first) {
    symbol_table t;
    fsm_builder ba("A", t);
    ba.internal("a1", "s0", "g", "m1", "s1", machine_id{0});   // self
    ba.internal("a2", "s1", "h", "m2", "s0", machine_id{9});   // range
    fsm_builder bb("B", t);
    bb.external("b1", "q0", "z", "r", "q0");
    const system sys =
        build_two(std::move(t), ba.build("s0"), bb.build("q0"));
    EXPECT_GE(check_structure(sys).size(), 2u);
}

}  // namespace
}  // namespace cfsmdiag
