// cfsmdiag — command-line front end for the library.
//
//   cfsmdiag show <system-file>             validate and pretty-print
//   cfsmdiag dot <system-file>              Graphviz DOT for every machine
//   cfsmdiag gen <system-file> <method>     generate a test suite
//                                           (tour|w|wp|uio|ds|diagnostic)
//   cfsmdiag diagnose <system-file> <suite-file> <fault-spec> [--json]
//                                           diagnose a simulated IUT, e.g.
//                                           fault-spec "M3.t''4 -> s0" or
//                                           "M1.t7 / c' ; M2.t'1 -> s2"
//                                           (';' separates multiple faults)
//   cfsmdiag score <system-file> <suite>    mutation-score the suite
//   cfsmdiag reduce <system-file> <suite>   detection-preserving reduction
//   cfsmdiag campaign <system-file> [max] [--jobs N] [--max-faults N]
//                     [--seed S] [--json <path>] [--progress]
//                                           exhaustive fault campaign via
//                                           the parallel campaign engine
//   cfsmdiag campaign ... --checkpoint <path> [--checkpoint-every <n|Ns>]
//                     [--spill <path>] [--resume]
//                                           crash-safe checkpointed sweep:
//                                           SIGINT/SIGTERM flush a final
//                                           snapshot; --resume continues a
//                                           killed run byte-identically
//   cfsmdiag random <seed> [N] [states]     emit a random system file
//
// Files use the text format of src/io/text_format.hpp.
#include <algorithm>
#include <csignal>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "cfsmdiag.hpp"

namespace {

using namespace cfsmdiag;

std::string slurp(const std::string& path) {
    std::ifstream in(path);
    detail::require(in.good(), "cannot open file: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

// ---------------------------------------------------------------------------
// Strict flag-value parsing.  Every numeric flag goes through one of these,
// so a bad value is a usage_error naming the offending flag and its expected
// domain — not an unanchored std::stoul exception or a silent wrap of a
// negative number to a huge unsigned one.

std::uint64_t parse_count(const std::string& flag, const std::string& text) {
    if (text.empty() || text.find_first_not_of("0123456789") !=
                            std::string::npos)
        throw usage_error(flag + " expects a non-negative integer, got '" +
                          text + "'");
    try {
        return std::stoull(text);
    } catch (const std::out_of_range&) {
        throw usage_error(flag + " value '" + text + "' is out of range");
    }
}

double parse_rate(const std::string& flag, const std::string& text) {
    double value = 0.0;
    std::size_t used = 0;
    try {
        value = std::stod(text, &used);
    } catch (const std::exception&) {
        used = 0;
    }
    if (used != text.size() || !(value >= 0.0) || !(value <= 1.0))
        throw usage_error(flag + " expects a rate in [0, 1], got '" + text +
                          "'");
    return value;
}

int cmd_show(const std::string& path) {
    const auto sys = parse_system(slurp(path));
    const auto violations = check_structure(sys);
    std::cout << "system " << sys.name() << ": " << sys.machine_count()
              << " machines, " << sys.total_transitions()
              << " transitions\n";
    for (const fsm& m : sys.machines()) {
        text_table t({"name", "from", "input", "output", "to", "kind"});
        for (const auto& tr : m.transitions()) {
            t.add_row({tr.name, m.state_name(tr.from),
                       sys.symbols().name(tr.input),
                       sys.symbols().name(tr.output), m.state_name(tr.to),
                       tr.kind == output_kind::external
                           ? "external"
                           : "=> " + sys.machine(tr.destination).name()});
        }
        std::cout << "\n" << m.name() << " (initial "
                  << m.state_name(m.initial_state()) << "):\n"
                  << t;
    }
    if (violations.empty()) {
        std::cout << "\nstructure: OK\n";
        return 0;
    }
    std::cout << "\nstructure violations:\n";
    for (const auto& v : violations) std::cout << "  - " << v.message << "\n";
    return 1;
}

int cmd_dot(const std::string& path) {
    const auto sys = parse_system(slurp(path));
    for (const fsm& m : sys.machines())
        std::cout << to_dot(m, sys.symbols()) << "\n";
    return 0;
}

int cmd_gen(const std::string& path, const std::string& method) {
    const auto sys = parse_system(slurp(path));
    validate_structure(sys);
    test_suite suite;
    if (method == "tour") {
        const auto r = transition_tour(sys);
        suite = r.suite;
        for (auto id : r.uncovered)
            std::cerr << "# uncovered: " << sys.transition_label(id) << "\n";
    } else if (method == "w") {
        suite = per_machine_method_suite(sys, verification_method::w).suite;
    } else if (method == "wp") {
        suite = per_machine_method_suite(sys, verification_method::wp).suite;
    } else if (method == "uio") {
        suite =
            per_machine_method_suite(sys, verification_method::uio).suite;
    } else if (method == "ds") {
        suite = per_machine_method_suite(sys, verification_method::ds).suite;
    } else if (method == "diagnostic") {
        const auto r = apriori_diagnostic_suite(sys);
        suite = r.suite;
        std::cerr << "# " << r.hypotheses << " hypotheses, "
                  << r.equivalent_groups << " equivalent group(s)\n";
    } else {
        throw usage_error("gen: unknown method '" + method +
                          "' (tour|w|wp|uio|ds|diagnostic)");
    }
    std::cout << write_suite(suite, sys.symbols());
    return 0;
}

int cmd_diagnose(const std::string& sys_path, const std::string& suite_path,
                 const std::string& fault_spec, bool as_json) {
    const auto sys = parse_system(slurp(sys_path));
    validate_structure(sys);
    const auto suite = parse_suite(slurp(suite_path), sys.symbols());

    fault_set faults;
    for (const auto& piece : split(fault_spec, ';')) {
        if (trim(piece).empty()) continue;
        faults.faults.push_back(parse_fault(std::string(trim(piece)), sys));
    }
    detail::require(!faults.faults.empty(), "no fault specified");

    if (faults.faults.size() == 1) {
        simulated_iut iut(sys, faults.faults[0]);
        const auto result = diagnose(sys, suite, iut);
        if (as_json) {
            std::cout << report_to_json(sys, result).dump(true) << "\n";
        } else {
            std::cout << summarize(sys, result);
        }
        return result.outcome == diagnosis_outcome::passed ? 1 : 0;
    }
    simulated_multi_iut iut(sys, faults);
    const auto result = diagnose_multi(sys, suite, iut);
    if (as_json) {
        std::cout << report_to_json(sys, result).dump(true) << "\n";
        return result.outcome == diagnosis_outcome::passed ? 1 : 0;
    }
    std::cout << "outcome: " << to_string(result.outcome) << "\n";
    std::cout << "initial hypotheses: " << result.initial_hypotheses
              << ", additional tests: " << result.additional_tests.size()
              << "\n";
    for (const auto& fs : result.final_hypotheses)
        std::cout << "  - " << describe(sys, fs) << "\n";
    return result.outcome == diagnosis_outcome::passed ? 1 : 0;
}

int cmd_witness(const std::string& sys_path,
                const std::string& fault_spec) {
    const auto sys = parse_system(slurp(sys_path));
    validate_structure(sys);
    const auto fault = parse_fault(fault_spec, sys);
    const auto w = witness_test(sys, fault);
    if (!w) {
        std::cout << "fault is observationally equivalent to the "
                     "specification — no witness exists\n";
        return 1;
    }
    std::cout << describe(sys, fault) << "\n" << w->describe(sys);
    return 0;
}

int cmd_score(const std::string& sys_path, const std::string& suite_path) {
    const auto sys = parse_system(slurp(sys_path));
    validate_structure(sys);
    const auto suite = parse_suite(slurp(suite_path), sys.symbols());
    const auto report = mutation_score(sys, suite);
    std::cout << "mutants: " << report.mutants << ", killed: "
              << report.killed << ", equivalent: "
              << report.equivalent.size() << ", score: "
              << fmt_double(100.0 * report.score(), 1) << "%\n";
    if (!report.survivors.empty()) {
        std::cout << "live (killable) mutants:\n";
        for (const auto& f : report.survivors)
            std::cout << "  - " << describe(sys, f) << "\n";
    }
    return report.survivors.empty() ? 0 : 1;
}

int cmd_reduce(const std::string& sys_path, const std::string& suite_path) {
    const auto sys = parse_system(slurp(sys_path));
    validate_structure(sys);
    const auto suite = parse_suite(slurp(suite_path), sys.symbols());
    const auto reduced =
        reduce_suite(sys, suite, enumerate_all_faults(sys));
    std::cerr << "# " << reduced.cases_before << " -> "
              << reduced.cases_after << " cases ("
              << reduced.undetected_faults
              << " faults were never detected)\n";
    std::cout << write_suite(reduced.suite, sys.symbols());
    return 0;
}

/// Streams one line per diagnosed fault to stderr (`--progress`).
class progress_printer final : public campaign_observer {
  public:
    explicit progress_printer(const cfsmdiag::system& sys) : sys_(sys) {}

    void on_campaign_begin(std::size_t planned) override {
        std::cerr << "# campaign: " << planned << " fault(s)\n";
    }
    void on_fault_done(std::size_t index,
                       const campaign_entry& entry) override {
        std::cerr << "# [" << (index + 1) << "] "
                  << describe(sys_, entry.fault) << ": "
                  << to_string(entry.outcome) << "\n";
    }
    void on_campaign_end(const campaign_stats&,
                         const campaign_metrics& metrics) override {
        std::cerr << "# done in " << fmt_double(metrics.wall_total, 2)
                  << "s on " << metrics.jobs << " worker(s)\n";
    }

  private:
    const cfsmdiag::system& sys_;
};

struct campaign_cli_args {
    std::string system_path;
    campaign_options options;
    std::string json_path;  ///< empty = human-readable summary only
    bool progress = false;
    // Checkpointed-sweep mode (engaged by --checkpoint).
    std::string checkpoint_path;
    std::string spill_path;
    std::size_t checkpoint_every_entries = 1024;
    double checkpoint_every_seconds = 0.0;
    bool resume = false;
    /// Test seam for the kill/resume CI stage: SIGKILL this process after
    /// the N-th emitted entry, as abruptly as a crash would.
    std::optional<std::size_t> abort_after;
};

/// campaign <system-file> [max] [--jobs N] [--max-faults N] [--seed S]
/// [--json <path>] [--progress] [--no-replay-cache] [--no-compiled-core]
/// [--no-flat-discrimination] [--no-discrim-memo] [--max-joint-states N]
/// [--flaky R]
/// [--flaky-seed S] [--retries N] [--votes N] [--retry-deadline-ms N]
/// [--deadline-ms N] [--entry-deadline-ms N] [--entry-steps N]
/// [--max-memory-mb N]
/// [--checkpoint <path>] [--checkpoint-every <n|Ns>] [--spill <path>]
/// [--resume] [--abort-after N] — the bare positional [max] is the
/// pre-engine spelling and keeps old invocations working.
campaign_cli_args parse_campaign_args(const std::vector<std::string>& args) {
    campaign_cli_args out;
    out.system_path = args[1];
    std::uint64_t flaky_seed = 1;
    double flaky_rate = 0.0;
    bool flaky_set = false;
    bool cadence_set = false;
    auto value_of = [&](std::size_t& i, const std::string& flag) {
        if (i + 1 >= args.size())
            throw usage_error("campaign: " + flag + " needs a value");
        return args[++i];
    };
    for (std::size_t i = 2; i < args.size(); ++i) {
        const std::string& a = args[i];
        if (a == "--jobs") {
            const std::string v = value_of(i, a);
            if (v == "auto") {
                out.options.jobs = 0;  // engine: hardware concurrency
            } else {
                out.options.jobs = parse_count("campaign: --jobs", v);
                if (out.options.jobs == 0)
                    throw usage_error(
                        "campaign: --jobs expects a positive worker count "
                        "or 'auto', got '0'");
            }
        } else if (a == "--max-faults") {
            out.options.max_faults =
                parse_count("campaign: --max-faults", value_of(i, a));
        } else if (a == "--seed") {
            out.options.seed =
                parse_count("campaign: --seed", value_of(i, a));
        } else if (a == "--json") {
            out.json_path = value_of(i, a);
        } else if (a == "--progress") {
            out.progress = true;
        } else if (a == "--no-replay-cache") {
            // A/B switch: results are identical, only cost differs.
            out.options.diag.use_replay_cache = false;
        } else if (a == "--no-compiled-core") {
            // A/B switch: reference std::set/std::map pipeline instead of
            // the compiled bitset core; entries are byte-identical.
            out.options.diag.use_compiled_core = false;
        } else if (a == "--no-flat-discrimination") {
            // A/B switch: reference joint search instead of the flat
            // discrimination engine; entries are byte-identical.
            out.options.diag.use_flat_discrimination = false;
        } else if (a == "--no-discrim-memo") {
            // A/B switch: keep the flat engine but recompute every joint
            // search instead of sharing results across faults.
            out.options.diag.use_discrim_memo = false;
        } else if (a == "--max-joint-states") {
            out.options.diag.max_joint_states = parse_count(
                "campaign: --max-joint-states", value_of(i, a));
        } else if (a == "--flaky") {
            // Drop+garble at R, hangs and reset faults at R/10 (see
            // flakiness_profile::uniform).
            flaky_rate = parse_rate("campaign: --flaky", value_of(i, a));
            flaky_set = true;
        } else if (a == "--flaky-seed") {
            flaky_seed =
                parse_count("campaign: --flaky-seed", value_of(i, a));
        } else if (a == "--retries") {
            out.options.retry.max_retries =
                parse_count("campaign: --retries", value_of(i, a));
        } else if (a == "--votes") {
            out.options.retry.votes =
                parse_count("campaign: --votes", value_of(i, a));
        } else if (a == "--deadline-ms") {
            // Campaign-wide wall-clock budget: on expiry the watchdog
            // cancels the run and every unfinished fault reports a
            // classified timed-out entry (exit code 3, like SIGINT).
            const std::uint64_t ms =
                parse_count("campaign: --deadline-ms", value_of(i, a));
            if (ms == 0)
                throw usage_error(
                    "campaign: --deadline-ms expects a positive "
                    "millisecond count, got '0'");
            out.options.budget.campaign_deadline =
                std::chrono::milliseconds(ms);
        } else if (a == "--entry-deadline-ms") {
            const std::uint64_t ms =
                parse_count("campaign: --entry-deadline-ms", value_of(i, a));
            if (ms == 0)
                throw usage_error(
                    "campaign: --entry-deadline-ms expects a positive "
                    "millisecond count, got '0'");
            out.options.budget.entry_deadline =
                std::chrono::milliseconds(ms);
        } else if (a == "--entry-steps") {
            // Deterministic per-entry budget (counted in governed steps,
            // not wall-clock) — the reproducible way to exercise the
            // degradation ladder.
            const std::uint64_t steps =
                parse_count("campaign: --entry-steps", value_of(i, a));
            if (steps == 0)
                throw usage_error(
                    "campaign: --entry-steps expects a positive step "
                    "count, got '0'");
            out.options.budget.entry_step_quota = steps;
        } else if (a == "--max-memory-mb") {
            const std::uint64_t mb =
                parse_count("campaign: --max-memory-mb", value_of(i, a));
            constexpr std::uint64_t mib = 1024 * 1024;
            if (mb == 0 || mb > SIZE_MAX / mib)
                throw usage_error(
                    "campaign: --max-memory-mb expects a positive "
                    "megabyte count below " +
                    std::to_string(SIZE_MAX / mib) + ", got '" +
                    std::to_string(mb) + "'");
            out.options.budget.entry_memory_bytes =
                static_cast<std::size_t>(mb * mib);
        } else if (a == "--retry-deadline-ms") {
            // Per-fault deadline of the resilient-oracle retry policy
            // (previously spelled --deadline-ms, which now names the
            // campaign-wide budget above).
            out.options.retry.deadline_ms = parse_count(
                "campaign: --retry-deadline-ms", value_of(i, a));
        } else if (a == "--checkpoint") {
            out.checkpoint_path = value_of(i, a);
        } else if (a == "--checkpoint-every") {
            // "250" = every 250 entries; "30s" / "2.5s" = every 30 / 2.5
            // seconds (whichever cadence is chosen, the other is off).
            const std::string v = value_of(i, a);
            cadence_set = true;
            if (!v.empty() && v.back() == 's') {
                double seconds = 0.0;
                std::size_t used = 0;
                try {
                    seconds = std::stod(v, &used);
                } catch (const std::exception&) {
                    used = 0;
                }
                if (used + 1 != v.size() || !(seconds > 0.0))
                    throw usage_error(
                        "campaign: --checkpoint-every expects a positive "
                        "entry count or a seconds value like '30s', got '" +
                        v + "'");
                out.checkpoint_every_seconds = seconds;
                out.checkpoint_every_entries = 0;
            } else {
                out.checkpoint_every_entries =
                    parse_count("campaign: --checkpoint-every", v);
            }
        } else if (a == "--spill") {
            out.spill_path = value_of(i, a);
        } else if (a == "--resume") {
            out.resume = true;
        } else if (a == "--abort-after") {
            out.abort_after =
                parse_count("campaign: --abort-after", value_of(i, a));
        } else if (!a.empty() && a[0] != '-' && !out.options.max_faults) {
            out.options.max_faults = parse_count("campaign: [max-faults]", a);
        } else {
            throw usage_error("campaign: unknown flag '" + a + "'");
        }
    }
    if (flaky_set)
        out.options.flaky = flakiness_profile::uniform(flaky_rate,
                                                       flaky_seed);
    if (out.checkpoint_path.empty()) {
        // Sweep-only flags are meaningless without a checkpoint file;
        // silently ignoring them would look like a resumable run that isn't.
        const char* orphan = out.resume               ? "--resume"
                             : !out.spill_path.empty() ? "--spill"
                             : out.abort_after         ? "--abort-after"
                             : cadence_set             ? "--checkpoint-every"
                                                       : nullptr;
        if (orphan)
            throw usage_error(std::string("campaign: ") + orphan +
                              " requires --checkpoint <path>");
    }
    return out;
}

/// SIGINT/SIGTERM request a graceful sweep stop: the handler only flips a
/// flag; the sweep's should_stop predicate polls it between entries and the
/// final snapshot is flushed on the normal exit path (async-signal-safe by
/// construction — no I/O happens in the handler).
volatile std::sig_atomic_t g_stop_requested = 0;

extern "C" void request_stop(int) { g_stop_requested = 1; }

void print_campaign_summary(const campaign_stats& stats,
                            const campaign_metrics& metrics) {
    std::cout << "faults: " << stats.total << ", detected: "
              << stats.detected << ", localized: " << stats.localized
              << " (+" << stats.localized_equiv << " up to equivalence)"
              << ", sound: " << stats.sound << "\n";
    if (stats.errored > 0 || stats.inconclusive_unreliable > 0 ||
        stats.retries > 0 || stats.quarantined_runs > 0) {
        std::cout << "reliability: " << stats.inconclusive_unreliable
                  << " inconclusive (unreliable), " << stats.errored
                  << " errored, " << stats.quarantined_runs
                  << " quarantined run(s), " << stats.retries
                  << " retrie(s), " << stats.transient_failures
                  << " transient failure(s)\n";
    }
    if (stats.inconclusive_resource > 0 || stats.timed_out > 0) {
        std::cout << "budget: " << stats.inconclusive_resource
                  << " inconclusive (resource), " << stats.timed_out
                  << " timed out\n";
    }
    std::cout << "mean additional tests: "
              << fmt_double(stats.mean_additional_tests, 2)
              << ", mean additional inputs: "
              << fmt_double(stats.mean_additional_inputs, 2) << "\n";
    std::cout << "cost: " << metrics.replays << " replays, "
              << metrics.simulated_steps << " simulated steps, "
              << metrics.oracle_executions << " oracle executions, "
              << metrics.oracle_inputs << " oracle inputs, "
              << fmt_double(metrics.wall_total, 2) << "s on "
              << metrics.jobs << " worker(s)\n";
    if (metrics.replay_cache_enabled) {
        std::cout << "replay cache: " << metrics.cache_case_skips
                  << " case skips, " << metrics.cache_suffix_replays
                  << " suffix replays\n";
    } else {
        std::cout << "replay cache: disabled\n";
    }
    if (metrics.flat_discrimination_enabled) {
        std::cout << "discrimination: " << metrics.discrim_joint_states
                  << " joint states, " << metrics.discrim_bfs_searches
                  << " searches, " << metrics.discrim_table_answers
                  << " table answers, memo "
                  << (metrics.discrim_memo_enabled
                          ? std::to_string(metrics.discrim_memo_hits) +
                                " hits / " +
                                std::to_string(metrics.discrim_memo_misses) +
                                " misses"
                          : std::string("disabled"))
                  << "\n";
    } else {
        std::cout << "discrimination: reference search\n";
    }
}

void write_campaign_json(const std::string& path, const cfsmdiag::system& sys,
                         const campaign_stats& stats,
                         const campaign_metrics& metrics) {
    std::ofstream jout(path);
    detail::require(jout.good(), "cannot write file: " + path);
    // The streaming overload renders entry-by-entry, so the report costs
    // one entry of memory even for very large campaigns.
    campaign_to_json(jout, sys, stats, metrics);
    jout << "\n";
}

int run_checkpointed_sweep(const campaign_cli_args& cli,
                           const cfsmdiag::system& sys,
                           const test_suite& suite,
                           std::vector<single_transition_fault> faults) {
    sweep_options sw;
    sw.campaign = cli.options;
    sw.checkpoint_path = cli.checkpoint_path;
    sw.spill_path = cli.spill_path;
    sw.checkpoint_every_entries = cli.checkpoint_every_entries;
    sw.checkpoint_every_seconds = cli.checkpoint_every_seconds;
    sw.resume = cli.resume;

    progress_printer progress(sys);
    if (cli.progress) sw.observer = &progress;

    // Ctrl-C / kill(1) end the sweep at the next entry boundary with a
    // final snapshot on disk; a second Ctrl-C during the drain still only
    // sets the flag, so the snapshot protocol is never interrupted midway
    // by us (SIGKILL of course can — that is what resume is for).
    g_stop_requested = 0;
    std::signal(SIGINT, request_stop);
    std::signal(SIGTERM, request_stop);
    std::size_t emitted = 0;
    sw.should_stop = [&]() {
        if (cli.abort_after && ++emitted >= *cli.abort_after)
            std::raise(SIGKILL);  // test seam: die as abruptly as a crash
        return g_stop_requested != 0;
    };

    const sweep_result result = run_sweep(sys, suite, faults, sw);
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);

    if (!cli.json_path.empty())
        write_campaign_json(cli.json_path, sys, result.stats,
                            result.metrics);
    const std::size_t planned = std::min(
        faults.size(), cli.options.max_faults.value_or(faults.size()));
    std::cout << "sweep: " << result.completed << "/" << planned
              << " faults done, " << result.snapshots_written
              << " snapshot(s) written";
    if (result.resumed_from > 0)
        std::cout << ", resumed from " << result.resumed_from;
    if (result.fell_back)
        std::cout << " (primary snapshot was torn; used .prev)";
    std::cout << "\n";
    print_campaign_summary(result.stats, result.metrics);
    if (result.interrupted) {
        std::cout << "interrupted — resume with --resume to continue from "
                  << result.completed << "\n";
        return 3;
    }
    return result.stats.sound == result.stats.detected ? 0 : 1;
}

int cmd_campaign(const campaign_cli_args& cli) {
    const auto sys = parse_system(slurp(cli.system_path));
    validate_structure(sys);
    const auto suite = transition_tour(sys).suite;
    auto faults = enumerate_all_faults(sys);

    if (!cli.checkpoint_path.empty())
        return run_checkpointed_sweep(cli, sys, suite, std::move(faults));

    campaign_engine engine(sys, suite, std::move(faults), cli.options);
    progress_printer progress(sys);
    if (cli.progress) engine.attach(progress);
    const campaign_stats& stats = engine.run();
    const campaign_metrics& metrics = engine.metrics();

    if (!cli.json_path.empty())
        write_campaign_json(cli.json_path, sys, stats, metrics);
    print_campaign_summary(stats, metrics);
    if (metrics.budget_stopped) {
        // Same contract as the sweep SIGINT path: the run ended early but
        // every planned fault has a classified entry.
        std::cout << "stopped by --deadline-ms — " << stats.timed_out
                  << " fault(s) timed out\n";
        return 3;
    }
    return stats.sound == stats.detected ? 0 : 1;
}

int cmd_random(std::uint64_t seed, std::size_t machines,
               std::size_t states) {
    rng random(seed);
    random_system_options opts;
    opts.machines = machines;
    opts.states_per_machine = states;
    opts.extra_transitions = 2 * states;
    std::cout << write_system(random_system(opts, random));
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    const std::vector<std::string> args(argv + 1, argv + argc);
    try {
        if (args.size() >= 2 && args[0] == "show") return cmd_show(args[1]);
        if (args.size() >= 2 && args[0] == "dot") return cmd_dot(args[1]);
        if (args.size() >= 3 && args[0] == "gen")
            return cmd_gen(args[1], args[2]);
        if (args.size() >= 4 && args[0] == "diagnose") {
            const bool as_json =
                args.size() >= 5 && args[4] == "--json";
            return cmd_diagnose(args[1], args[2], args[3], as_json);
        }
        if (args.size() >= 3 && args[0] == "witness")
            return cmd_witness(args[1], args[2]);
        if (args.size() >= 3 && args[0] == "score")
            return cmd_score(args[1], args[2]);
        if (args.size() >= 3 && args[0] == "reduce")
            return cmd_reduce(args[1], args[2]);
        if (args.size() >= 2 && args[0] == "campaign")
            return cmd_campaign(parse_campaign_args(args));
        if (args.size() >= 2 && args[0] == "random")
            return cmd_random(
                parse_count("random: <seed>", args[1]),
                args.size() >= 3 ? parse_count("random: [machines]", args[2])
                                 : 3,
                args.size() >= 4 ? parse_count("random: [states]", args[3])
                                 : 4);
    } catch (const cfsmdiag::usage_error& e) {
        std::cerr << "error: " << e.what()
                  << "\n(run cfsmdiag without arguments for usage)\n";
        return 2;
    } catch (const cfsmdiag::error& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    } catch (const std::exception& e) {
        // Residual stdlib failures (I/O, allocation) exit like any other
        // error instead of aborting.
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
    std::cerr
        << "usage:\n"
           "  cfsmdiag show <system-file>\n"
           "  cfsmdiag dot <system-file>\n"
           "  cfsmdiag gen <system-file> tour|w|wp|uio|ds|diagnostic\n"
           "  cfsmdiag diagnose <system-file> <suite-file> <fault-spec> "
           "[--json]\n"
           "  cfsmdiag witness <system-file> <fault-spec>\n"
           "  cfsmdiag score <system-file> <suite-file>\n"
           "  cfsmdiag reduce <system-file> <suite-file>\n"
           "  cfsmdiag campaign <system-file> [max-faults] [--jobs N]\n"
           "                    [--max-faults N] [--seed S] [--json <path>]\n"
           "                    [--progress] [--no-replay-cache]\n"
           "                    [--no-compiled-core]\n"
           "                    [--no-flat-discrimination]\n"
           "                    [--no-discrim-memo]\n"
           "                    [--max-joint-states N]\n"
           "                    [--flaky R] [--flaky-seed S] [--retries N]\n"
           "                    [--votes N] [--retry-deadline-ms N]\n"
           "                    [--deadline-ms N] (campaign-wide wall-clock\n"
           "                     budget; unfinished faults become classified\n"
           "                     timed-out entries and the exit code is 3)\n"
           "                    [--entry-deadline-ms N] [--entry-steps N]\n"
           "                    [--max-memory-mb N] (per-fault budgets; on\n"
           "                     exhaustion the diagnosis degrades to an\n"
           "                     inconclusive-resource verdict, never a\n"
           "                     wrong or missing entry)\n"
           "                    [--checkpoint <path>]\n"
           "                    [--checkpoint-every <n|Ns>] (entries, or\n"
           "                     seconds with an 's' suffix; default 1024)\n"
           "                    [--spill <path>] (JSONL, one entry per "
           "line)\n"
           "                    [--resume] [--abort-after N]\n"
           "    with --checkpoint, the campaign runs as a crash-safe sweep:\n"
           "    SIGINT/SIGTERM flush a final snapshot and exit 3; --resume\n"
           "    continues byte-identically from the last good snapshot\n"
           "  cfsmdiag random <seed> [machines] [states]\n";
    return 2;
}
