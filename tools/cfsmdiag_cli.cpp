// cfsmdiag — command-line front end for the library.
//
//   cfsmdiag show <system-file>             validate and pretty-print
//   cfsmdiag dot <system-file>              Graphviz DOT for every machine
//   cfsmdiag gen <system-file> <method>     generate a test suite
//                                           (tour|w|wp|uio|ds|diagnostic)
//   cfsmdiag diagnose <system-file> <suite-file> <fault-spec> [--json]
//                                           diagnose a simulated IUT, e.g.
//                                           fault-spec "M3.t''4 -> s0" or
//                                           "M1.t7 / c' ; M2.t'1 -> s2"
//                                           (';' separates multiple faults)
//   cfsmdiag score <system-file> <suite>    mutation-score the suite
//   cfsmdiag reduce <system-file> <suite>   detection-preserving reduction
//   cfsmdiag campaign <system-file> [max] [--jobs N] [--max-faults N]
//                     [--seed S] [--json <path>] [--progress]
//                                           exhaustive fault campaign via
//                                           the parallel campaign engine
//   cfsmdiag random <seed> [N] [states]     emit a random system file
//
// Files use the text format of src/io/text_format.hpp.
#include <fstream>
#include <iostream>
#include <sstream>

#include "cfsmdiag.hpp"

namespace {

using namespace cfsmdiag;

std::string slurp(const std::string& path) {
    std::ifstream in(path);
    detail::require(in.good(), "cannot open file: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

int cmd_show(const std::string& path) {
    const auto sys = parse_system(slurp(path));
    const auto violations = check_structure(sys);
    std::cout << "system " << sys.name() << ": " << sys.machine_count()
              << " machines, " << sys.total_transitions()
              << " transitions\n";
    for (const fsm& m : sys.machines()) {
        text_table t({"name", "from", "input", "output", "to", "kind"});
        for (const auto& tr : m.transitions()) {
            t.add_row({tr.name, m.state_name(tr.from),
                       sys.symbols().name(tr.input),
                       sys.symbols().name(tr.output), m.state_name(tr.to),
                       tr.kind == output_kind::external
                           ? "external"
                           : "=> " + sys.machine(tr.destination).name()});
        }
        std::cout << "\n" << m.name() << " (initial "
                  << m.state_name(m.initial_state()) << "):\n"
                  << t;
    }
    if (violations.empty()) {
        std::cout << "\nstructure: OK\n";
        return 0;
    }
    std::cout << "\nstructure violations:\n";
    for (const auto& v : violations) std::cout << "  - " << v.message << "\n";
    return 1;
}

int cmd_dot(const std::string& path) {
    const auto sys = parse_system(slurp(path));
    for (const fsm& m : sys.machines())
        std::cout << to_dot(m, sys.symbols()) << "\n";
    return 0;
}

int cmd_gen(const std::string& path, const std::string& method) {
    const auto sys = parse_system(slurp(path));
    validate_structure(sys);
    test_suite suite;
    if (method == "tour") {
        const auto r = transition_tour(sys);
        suite = r.suite;
        for (auto id : r.uncovered)
            std::cerr << "# uncovered: " << sys.transition_label(id) << "\n";
    } else if (method == "w") {
        suite = per_machine_method_suite(sys, verification_method::w).suite;
    } else if (method == "wp") {
        suite = per_machine_method_suite(sys, verification_method::wp).suite;
    } else if (method == "uio") {
        suite =
            per_machine_method_suite(sys, verification_method::uio).suite;
    } else if (method == "ds") {
        suite = per_machine_method_suite(sys, verification_method::ds).suite;
    } else if (method == "diagnostic") {
        const auto r = apriori_diagnostic_suite(sys);
        suite = r.suite;
        std::cerr << "# " << r.hypotheses << " hypotheses, "
                  << r.equivalent_groups << " equivalent group(s)\n";
    } else {
        std::cerr << "unknown method '" << method
                  << "' (tour|w|wp|uio|ds|diagnostic)\n";
        return 2;
    }
    std::cout << write_suite(suite, sys.symbols());
    return 0;
}

int cmd_diagnose(const std::string& sys_path, const std::string& suite_path,
                 const std::string& fault_spec, bool as_json) {
    const auto sys = parse_system(slurp(sys_path));
    validate_structure(sys);
    const auto suite = parse_suite(slurp(suite_path), sys.symbols());

    fault_set faults;
    for (const auto& piece : split(fault_spec, ';')) {
        if (trim(piece).empty()) continue;
        faults.faults.push_back(parse_fault(std::string(trim(piece)), sys));
    }
    detail::require(!faults.faults.empty(), "no fault specified");

    if (faults.faults.size() == 1) {
        simulated_iut iut(sys, faults.faults[0]);
        const auto result = diagnose(sys, suite, iut);
        if (as_json) {
            std::cout << report_to_json(sys, result).dump(true) << "\n";
        } else {
            std::cout << summarize(sys, result);
        }
        return result.outcome == diagnosis_outcome::passed ? 1 : 0;
    }
    simulated_multi_iut iut(sys, faults);
    const auto result = diagnose_multi(sys, suite, iut);
    if (as_json) {
        std::cout << report_to_json(sys, result).dump(true) << "\n";
        return result.outcome == diagnosis_outcome::passed ? 1 : 0;
    }
    std::cout << "outcome: " << to_string(result.outcome) << "\n";
    std::cout << "initial hypotheses: " << result.initial_hypotheses
              << ", additional tests: " << result.additional_tests.size()
              << "\n";
    for (const auto& fs : result.final_hypotheses)
        std::cout << "  - " << describe(sys, fs) << "\n";
    return result.outcome == diagnosis_outcome::passed ? 1 : 0;
}

int cmd_witness(const std::string& sys_path,
                const std::string& fault_spec) {
    const auto sys = parse_system(slurp(sys_path));
    validate_structure(sys);
    const auto fault = parse_fault(fault_spec, sys);
    const auto w = witness_test(sys, fault);
    if (!w) {
        std::cout << "fault is observationally equivalent to the "
                     "specification — no witness exists\n";
        return 1;
    }
    std::cout << describe(sys, fault) << "\n" << w->describe(sys);
    return 0;
}

int cmd_score(const std::string& sys_path, const std::string& suite_path) {
    const auto sys = parse_system(slurp(sys_path));
    validate_structure(sys);
    const auto suite = parse_suite(slurp(suite_path), sys.symbols());
    const auto report = mutation_score(sys, suite);
    std::cout << "mutants: " << report.mutants << ", killed: "
              << report.killed << ", equivalent: "
              << report.equivalent.size() << ", score: "
              << fmt_double(100.0 * report.score(), 1) << "%\n";
    if (!report.survivors.empty()) {
        std::cout << "live (killable) mutants:\n";
        for (const auto& f : report.survivors)
            std::cout << "  - " << describe(sys, f) << "\n";
    }
    return report.survivors.empty() ? 0 : 1;
}

int cmd_reduce(const std::string& sys_path, const std::string& suite_path) {
    const auto sys = parse_system(slurp(sys_path));
    validate_structure(sys);
    const auto suite = parse_suite(slurp(suite_path), sys.symbols());
    const auto reduced =
        reduce_suite(sys, suite, enumerate_all_faults(sys));
    std::cerr << "# " << reduced.cases_before << " -> "
              << reduced.cases_after << " cases ("
              << reduced.undetected_faults
              << " faults were never detected)\n";
    std::cout << write_suite(reduced.suite, sys.symbols());
    return 0;
}

/// Streams one line per diagnosed fault to stderr (`--progress`).
class progress_printer final : public campaign_observer {
  public:
    explicit progress_printer(const cfsmdiag::system& sys) : sys_(sys) {}

    void on_campaign_begin(std::size_t planned) override {
        std::cerr << "# campaign: " << planned << " fault(s)\n";
    }
    void on_fault_done(std::size_t index,
                       const campaign_entry& entry) override {
        std::cerr << "# [" << (index + 1) << "] "
                  << describe(sys_, entry.fault) << ": "
                  << to_string(entry.outcome) << "\n";
    }
    void on_campaign_end(const campaign_stats&,
                         const campaign_metrics& metrics) override {
        std::cerr << "# done in " << fmt_double(metrics.wall_total, 2)
                  << "s on " << metrics.jobs << " worker(s)\n";
    }

  private:
    const cfsmdiag::system& sys_;
};

struct campaign_cli_args {
    std::string system_path;
    campaign_options options;
    std::string json_path;  ///< empty = human-readable summary only
    bool progress = false;
};

/// campaign <system-file> [max] [--jobs N] [--max-faults N] [--seed S]
/// [--json <path>] [--progress] [--no-replay-cache] [--no-compiled-core]
/// [--no-flat-discrimination] [--no-discrim-memo] [--max-joint-states N]
/// [--flaky R]
/// [--flaky-seed S] [--retries N] [--votes N] [--deadline-ms N] — the bare
/// positional [max] is the pre-engine spelling and keeps old invocations
/// working.
campaign_cli_args parse_campaign_args(const std::vector<std::string>& args) {
    campaign_cli_args out;
    out.system_path = args[1];
    std::uint64_t flaky_seed = 1;
    double flaky_rate = 0.0;
    bool flaky_set = false;
    auto value_of = [&](std::size_t& i, const std::string& flag) {
        detail::require(i + 1 < args.size(), flag + " needs a value");
        return args[++i];
    };
    for (std::size_t i = 2; i < args.size(); ++i) {
        const std::string& a = args[i];
        if (a == "--jobs") {
            out.options.jobs = std::stoul(value_of(i, a));
        } else if (a == "--max-faults") {
            out.options.max_faults = std::stoul(value_of(i, a));
        } else if (a == "--seed") {
            out.options.seed = std::stoull(value_of(i, a));
        } else if (a == "--json") {
            out.json_path = value_of(i, a);
        } else if (a == "--progress") {
            out.progress = true;
        } else if (a == "--no-replay-cache") {
            // A/B switch: results are identical, only cost differs.
            out.options.diag.use_replay_cache = false;
        } else if (a == "--no-compiled-core") {
            // A/B switch: reference std::set/std::map pipeline instead of
            // the compiled bitset core; entries are byte-identical.
            out.options.diag.use_compiled_core = false;
        } else if (a == "--no-flat-discrimination") {
            // A/B switch: reference joint search instead of the flat
            // discrimination engine; entries are byte-identical.
            out.options.diag.use_flat_discrimination = false;
        } else if (a == "--no-discrim-memo") {
            // A/B switch: keep the flat engine but recompute every joint
            // search instead of sharing results across faults.
            out.options.diag.use_discrim_memo = false;
        } else if (a == "--max-joint-states") {
            out.options.diag.max_joint_states =
                std::stoul(value_of(i, a));
        } else if (a == "--flaky") {
            // Drop+garble at R, hangs and reset faults at R/10 (see
            // flakiness_profile::uniform).
            flaky_rate = std::stod(value_of(i, a));
            flaky_set = true;
        } else if (a == "--flaky-seed") {
            flaky_seed = std::stoull(value_of(i, a));
        } else if (a == "--retries") {
            out.options.retry.max_retries = std::stoul(value_of(i, a));
        } else if (a == "--votes") {
            out.options.retry.votes = std::stoul(value_of(i, a));
        } else if (a == "--deadline-ms") {
            out.options.retry.deadline_ms = std::stoull(value_of(i, a));
        } else if (!a.empty() && a[0] != '-' && !out.options.max_faults) {
            out.options.max_faults = std::stoul(a);
        } else {
            throw error("campaign: unknown argument '" + a + "'");
        }
    }
    if (flaky_set)
        out.options.flaky = flakiness_profile::uniform(flaky_rate,
                                                       flaky_seed);
    return out;
}

int cmd_campaign(const campaign_cli_args& cli) {
    const auto sys = parse_system(slurp(cli.system_path));
    validate_structure(sys);
    const auto suite = transition_tour(sys).suite;

    campaign_engine engine(sys, suite, enumerate_all_faults(sys),
                           cli.options);
    progress_printer progress(sys);
    if (cli.progress) engine.attach(progress);
    const campaign_stats& stats = engine.run();
    const campaign_metrics& metrics = engine.metrics();

    if (!cli.json_path.empty()) {
        std::ofstream jout(cli.json_path);
        detail::require(jout.good(),
                        "cannot write file: " + cli.json_path);
        jout << campaign_to_json(sys, stats, metrics).dump(true) << "\n";
    }
    std::cout << "faults: " << stats.total << ", detected: "
              << stats.detected << ", localized: " << stats.localized
              << " (+" << stats.localized_equiv << " up to equivalence)"
              << ", sound: " << stats.sound << "\n";
    if (stats.errored > 0 || stats.inconclusive_unreliable > 0 ||
        stats.retries > 0 || stats.quarantined_runs > 0) {
        std::cout << "reliability: " << stats.inconclusive_unreliable
                  << " inconclusive (unreliable), " << stats.errored
                  << " errored, " << stats.quarantined_runs
                  << " quarantined run(s), " << stats.retries
                  << " retrie(s), " << stats.transient_failures
                  << " transient failure(s)\n";
    }
    std::cout << "mean additional tests: "
              << fmt_double(stats.mean_additional_tests, 2)
              << ", mean additional inputs: "
              << fmt_double(stats.mean_additional_inputs, 2) << "\n";
    std::cout << "cost: " << metrics.replays << " replays, "
              << metrics.simulated_steps << " simulated steps, "
              << metrics.oracle_executions << " oracle executions, "
              << metrics.oracle_inputs << " oracle inputs, "
              << fmt_double(metrics.wall_total, 2) << "s on "
              << metrics.jobs << " worker(s)\n";
    if (metrics.replay_cache_enabled) {
        std::cout << "replay cache: " << metrics.cache_case_skips
                  << " case skips, " << metrics.cache_suffix_replays
                  << " suffix replays\n";
    } else {
        std::cout << "replay cache: disabled\n";
    }
    if (metrics.flat_discrimination_enabled) {
        std::cout << "discrimination: " << metrics.discrim_joint_states
                  << " joint states, " << metrics.discrim_bfs_searches
                  << " searches, " << metrics.discrim_table_answers
                  << " table answers, memo "
                  << (metrics.discrim_memo_enabled
                          ? std::to_string(metrics.discrim_memo_hits) +
                                " hits / " +
                                std::to_string(metrics.discrim_memo_misses) +
                                " misses"
                          : std::string("disabled"))
                  << "\n";
    } else {
        std::cout << "discrimination: reference search\n";
    }
    return stats.sound == stats.detected ? 0 : 1;
}

int cmd_random(std::uint64_t seed, std::size_t machines,
               std::size_t states) {
    rng random(seed);
    random_system_options opts;
    opts.machines = machines;
    opts.states_per_machine = states;
    opts.extra_transitions = 2 * states;
    std::cout << write_system(random_system(opts, random));
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    const std::vector<std::string> args(argv + 1, argv + argc);
    try {
        if (args.size() >= 2 && args[0] == "show") return cmd_show(args[1]);
        if (args.size() >= 2 && args[0] == "dot") return cmd_dot(args[1]);
        if (args.size() >= 3 && args[0] == "gen")
            return cmd_gen(args[1], args[2]);
        if (args.size() >= 4 && args[0] == "diagnose") {
            const bool as_json =
                args.size() >= 5 && args[4] == "--json";
            return cmd_diagnose(args[1], args[2], args[3], as_json);
        }
        if (args.size() >= 3 && args[0] == "witness")
            return cmd_witness(args[1], args[2]);
        if (args.size() >= 3 && args[0] == "score")
            return cmd_score(args[1], args[2]);
        if (args.size() >= 3 && args[0] == "reduce")
            return cmd_reduce(args[1], args[2]);
        if (args.size() >= 2 && args[0] == "campaign")
            return cmd_campaign(parse_campaign_args(args));
        if (args.size() >= 2 && args[0] == "random")
            return cmd_random(std::stoull(args[1]),
                              args.size() >= 3 ? std::stoul(args[2]) : 3,
                              args.size() >= 4 ? std::stoul(args[3]) : 4);
    } catch (const cfsmdiag::error& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    } catch (const std::exception& e) {
        // Malformed numeric arguments (std::stoul and friends) and other
        // stdlib failures exit like any usage error instead of aborting.
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
    std::cerr
        << "usage:\n"
           "  cfsmdiag show <system-file>\n"
           "  cfsmdiag dot <system-file>\n"
           "  cfsmdiag gen <system-file> tour|w|wp|uio|ds|diagnostic\n"
           "  cfsmdiag diagnose <system-file> <suite-file> <fault-spec> "
           "[--json]\n"
           "  cfsmdiag witness <system-file> <fault-spec>\n"
           "  cfsmdiag score <system-file> <suite-file>\n"
           "  cfsmdiag reduce <system-file> <suite-file>\n"
           "  cfsmdiag campaign <system-file> [max-faults] [--jobs N]\n"
           "                    [--max-faults N] [--seed S] [--json <path>]\n"
           "                    [--progress] [--no-replay-cache]\n"
           "                    [--no-compiled-core]\n"
           "                    [--no-flat-discrimination]\n"
           "                    [--no-discrim-memo]\n"
           "                    [--max-joint-states N]\n"
           "                    [--flaky R] [--flaky-seed S] [--retries N]\n"
           "                    [--votes N] [--deadline-ms N]\n"
           "  cfsmdiag random <seed> [machines] [states]\n";
    return 2;
}
