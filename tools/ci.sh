#!/usr/bin/env bash
# CI driver: build + test the two configurations that matter.
#
#   Release        — what users run; also the perf baseline.
#   ThreadSanitizer — shakes data races out of the parallel campaign engine
#                    (thread_pool, ordered observer emission, shared spec).
#   ASan+UBSan     — memory/UB pass over the unreliable-lab stack (flaky
#                    SUT, retrying oracle, crash-isolated engine), whose
#                    exception paths are easy to corrupt silently; also
#                    hosts the adversarial-input fuzz smoke over the
#                    untrusted parsers (io/text_format, io/snapshot).
#
# Usage: tools/ci.sh [jobs]      (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_config() {
  local name="$1"; shift
  local dir="build-ci-${name}"
  echo "=== [${name}] configure ==="
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "=== [${name}] build ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== [${name}] ctest ==="
  (cd "${dir}" && ctest --output-on-failure -j "${JOBS}")
}

run_config release -DCMAKE_BUILD_TYPE=Release

# Bench smoke run: the engine closing blocks assert that cache-on/off,
# compiled/reference and flat-discrimination/reference-search campaigns all
# stay byte-identical, and print the simulated-step and discrimination-wall
# reductions on a small workload (--quick caps the fault count).
echo "=== [release] bench smoke ==="
cmake --build build-ci-release -j "${JOBS}" --target bench_fault_campaign
(cd build-ci-release && bench/fault_campaign --quick)

# Sweep smoke: checkpoint a campaign, SIGKILL it mid-run via the
# --abort-after test seam, resume, and diff the merged spill against a
# straight-through run — the crash-safety contract, end to end through the
# CLI.  (bench/sweep --quick repeats the check in-process with fork, and
# additionally asserts aggregate identity and flat RSS; it runs as the
# bench_smoke_sweep ctest above.)
echo "=== [release] sweep kill/resume smoke ==="
sweep_dir=build-ci-release/sweep-smoke
rm -rf "${sweep_dir}" && mkdir -p "${sweep_dir}"
cli=build-ci-release/tools/cfsmdiag
"${cli}" campaign examples/data/figure1.cfsm --jobs 2 \
    --checkpoint "${sweep_dir}/ref.snap" --spill "${sweep_dir}/ref.jsonl" \
    --checkpoint-every 16 >/dev/null
"${cli}" campaign examples/data/figure1.cfsm --jobs 2 \
    --checkpoint "${sweep_dir}/kill.snap" \
    --spill "${sweep_dir}/kill.jsonl" \
    --checkpoint-every 16 --abort-after 60 >/dev/null 2>&1 \
    || true  # dies by SIGKILL — that's the point
"${cli}" campaign examples/data/figure1.cfsm --jobs 2 \
    --checkpoint "${sweep_dir}/kill.snap" \
    --spill "${sweep_dir}/kill.jsonl" \
    --checkpoint-every 16 --resume >/dev/null
cmp "${sweep_dir}/ref.jsonl" "${sweep_dir}/kill.jsonl"
echo "sweep kill/resume spill byte-identical"

# TSan config: only the engine/pool tests plus the parallel CLI smoke run —
# a full TSan ctest multiplies runtime ~10x without exercising any
# additional threading code (everything else in the library is serial).
tsan_dir=build-ci-tsan
echo "=== [tsan] configure ==="
cmake -B "${tsan_dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCFSMDIAG_SANITIZE=thread >/dev/null
echo "=== [tsan] build engine tests ==="
cmake --build "${tsan_dir}" -j "${JOBS}" \
      --target campaign_engine_test discrim_engine_test bitset_test \
      property_test budget_test cfsmdiag_cli
echo "=== [tsan] run ==="
"${tsan_dir}/tests/campaign_engine_test"
# The discrimination engine's lazily-built tables, sharded memo and replay/
# proposal caches are shared across campaign workers — the jobs-2 identity
# and counter-determinism tests are the racy surface.
"${tsan_dir}/tests/discrim_engine_test"
# The compiled core is shared read-only across workers (one spec_context per
# engine); the bitset/property tests run here to catch races in the arena
# and table sharing.
"${tsan_dir}/tests/bitset_test"
"${tsan_dir}/tests/property_test" \
      --gtest_filter='compiled_core.*'
# The watchdog thread, the shared cancel token, and parallel_for's
# cancellation fast-path race against every worker — the budget suite's
# watchdog/resume and pool-cancel tests are the new threaded surface.
"${tsan_dir}/tests/budget_test"
"${tsan_dir}/tools/cfsmdiag" campaign examples/data/figure1.cfsm \
      --max-faults 40 --jobs 4 --seed 7 >/dev/null

# ASan+UBSan config: the resilience suite plus a short flaky campaign —
# the injection/retry/quarantine paths throw and unwind constantly, which
# is exactly where lifetime bugs hide.
asan_dir=build-ci-asan
echo "=== [asan+ubsan] configure ==="
cmake -B "${asan_dir}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCFSMDIAG_SANITIZE=address,undefined >/dev/null
echo "=== [asan+ubsan] build resilience tests ==="
cmake --build "${asan_dir}" -j "${JOBS}" \
      --target resilience_test checkpoint_test bitset_test property_test \
      cfsmdiag_cli fuzz_io
echo "=== [asan+ubsan] run ==="
"${asan_dir}/tests/resilience_test"
# The checkpoint layer's POSIX fd handling (spill truncate/append/fsync),
# the snapshot rename dance, and the interrupt-by-throw unwind through the
# parallel engine all run under ASan/UBSan — torn-state bugs here corrupt
# sweeps silently.
"${asan_dir}/tests/checkpoint_test"
# Arena lifetimes and the packed-state bit arithmetic are exactly what
# ASan/UBSan are for: the bitset algebra and the compiled-vs-reference
# property sweep run under both.
"${asan_dir}/tests/bitset_test"
"${asan_dir}/tests/property_test" \
      --gtest_filter='compiled_core.*'
"${asan_dir}/tools/cfsmdiag" campaign examples/data/figure1.cfsm \
      --max-faults 20 --jobs 2 --seed 7 \
      --flaky 0.05 --retries 3 >/dev/null

# Adversarial-input pass: replay the committed regression corpus, then a
# bounded structure-aware mutation run, both under ASan+UBSan.  Every
# malformed byte stream must end in model_error/snapshot_error — any
# sanitizer report, other exception, or hang fails CI.  New crashers are
# minimized into ${asan_dir}/fuzz-crashers; commit them to tests/data/fuzz
# alongside the parser fix.
echo "=== [asan+ubsan] io fuzz smoke ==="
"${asan_dir}/tools/fuzz_io" --replay tests/data/fuzz
"${asan_dir}/tools/fuzz_io" --iters 400 --seed 42 \
      --out "${asan_dir}/fuzz-crashers"

echo "=== CI OK ==="
