// fuzz_io — deterministic structure-aware mutation fuzzer for the two
// untrusted input boundaries: the text format (systems, suites, fault
// specs) and the snapshot/checkpoint resume path.
//
// The contract under test: every byte stream, however malformed, must end
// in a positioned model_error / snapshot_error or a successful parse —
// never another exception type, UB, or unbounded allocation.  Anything
// else is a crasher: it is minimized by greedy chunk deletion and written
// to the output directory, named `<boundary>_<n>.dat` so a replay run can
// route it back to the right parser.
//
// Everything is seeded and platform-independent (util/rng.hpp), so a CI
// smoke run with fixed --iters/--seed explores the same inputs everywhere.
// Minimized crashers are committed to tests/data/fuzz/ as a regression
// corpus; tests/budget_test.cpp and tools/ci.sh replay it under
// ASan+UBSan.
//
//   fuzz_io [--iters N] [--seed S] [--out DIR]    fuzz, write crashers
//   fuzz_io --replay DIR                          re-run a corpus
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cfsmdiag.hpp"
#include "gen/checkpoint.hpp"
#include "io/snapshot.hpp"
#include "models/models.hpp"

namespace {

using namespace cfsmdiag;

// ---------------------------------------------------------------------------
// Boundaries.  Each one takes raw bytes and drives a full untrusted-input
// path, including the follow-on validation a real caller performs.

enum class boundary { system_text, suite_text, fault_text, snapshot };

constexpr const char* kBoundaryNames[] = {"system", "suite", "fault",
                                          "snapshot"};

const char* name_of(boundary b) {
    return kBoundaryNames[static_cast<int>(b)];
}

/// The spec the suite/fault parsers resolve symbols against — fixed, so
/// the fuzz target is purely the input bytes.
const cfsmdiag::system& reference_spec() {
    static const cfsmdiag::system spec = paperex::make_paper_example().spec;
    return spec;
}

/// Scratch file for the snapshot boundary (load_snapshot reads from disk).
std::string& snapshot_scratch() {
    static std::string path = [] {
        char tmpl[] = "/tmp/fuzz_io.XXXXXX";
        const char* dir = ::mkdtemp(tmpl);
        if (!dir) {
            std::cerr << "fuzz_io: mkdtemp failed\n";
            std::exit(2);
        }
        return std::string(dir) + "/snap";
    }();
    return path;
}

void drive(boundary b, const std::string& bytes) {
    switch (b) {
        case boundary::system_text: {
            const cfsmdiag::system sys = parse_system(bytes);
            validate_structure(sys);
            break;
        }
        case boundary::suite_text:
            (void)parse_suite(bytes, reference_spec().symbols());
            break;
        case boundary::fault_text:
            (void)parse_fault(bytes, reference_spec());
            break;
        case boundary::snapshot: {
            // File-level first (checksum/footer/size handling), then the
            // checkpoint grammar on whatever payload survives.
            const std::string& path = snapshot_scratch();
            {
                std::ofstream out(path, std::ios::binary | std::ios::trunc);
                out.write(bytes.data(),
                          static_cast<std::streamsize>(bytes.size()));
            }
            if (auto loaded = load_snapshot(path))
                (void)parse_sweep_checkpoint(loaded->payload);
            break;
        }
    }
}

/// True when the bytes crash the boundary (anything but success or a
/// model_error/snapshot_error rejection).  `why` gets the escapee's text.
bool crashes(boundary b, const std::string& bytes, std::string& why) {
    try {
        drive(b, bytes);
        return false;
    } catch (const model_error&) {
        return false;
    } catch (const snapshot_error&) {
        return false;
    } catch (const std::exception& e) {
        why = e.what();
        return true;
    } catch (...) {
        why = "(non-std exception)";
        return true;
    }
}

// ---------------------------------------------------------------------------
// Seeds: valid writes of real models, so mutations start structure-aware.

std::vector<std::string> seeds_for(boundary b) {
    const auto example = paperex::make_paper_example();
    switch (b) {
        case boundary::system_text:
            return {write_system(example.spec),
                    write_system(models::sliding_window(3))};
        case boundary::suite_text:
            return {write_suite(example.suite, example.spec.symbols())};
        case boundary::fault_text:
            return {write_fault(example.spec, example.fault)};
        case boundary::snapshot: {
            // A real on-disk snapshot of a plausible checkpoint, footer
            // and all.
            sweep_checkpoint cp = fingerprint_sweep(
                spec_context(example.spec, example.suite),
                enumerate_all_faults(example.spec), {});
            cp.planned = 10;
            cp.completed = 4;
            cp.aggregates.total = 4;
            cp.aggregates.detected = 3;
            cp.aggregates.sound = 3;
            const std::string& path = snapshot_scratch();
            write_snapshot_file(path, write_sweep_checkpoint(cp));
            std::ifstream in(path, std::ios::binary);
            std::ostringstream buf;
            buf << in.rdbuf();
            return {buf.str()};
        }
    }
    return {};
}

// ---------------------------------------------------------------------------
// Mutation engine: byte-level damage plus grammar-aware splices.

const std::vector<std::string>& dictionary() {
    static const std::vector<std::string> words = {
        "system ",  "machine ", " initial ", "end",
        " -> ",     " => ",     " / ",       ": ",
        "@P",       "R, ",      "#",         "\n",
        "checksum ", "format cfsmdiag-sweep-v2",
        "18446744073709551616", "99999999999999999999999999999999",
        "-1",       "0",        "a1",        "c'3",
    };
    return words;
}

std::string mutate(std::string s, rng& r) {
    const std::size_t rounds = 1 + r.index(4);
    for (std::size_t k = 0; k < rounds; ++k) {
        if (s.empty()) {
            s = r.pick(dictionary());
            continue;
        }
        switch (r.index(8)) {
            case 0:  // bit flip
                s[r.index(s.size())] ^=
                    static_cast<char>(1u << r.index(8));
                break;
            case 1:  // random byte
                s[r.index(s.size())] =
                    static_cast<char>(r.below(256));
                break;
            case 2:  // truncate
                s.resize(r.index(s.size()));
                break;
            case 3: {  // delete a slice
                const std::size_t at = r.index(s.size());
                const std::size_t len =
                    1 + r.index(std::min<std::size_t>(64, s.size() - at));
                s.erase(at, len);
                break;
            }
            case 4: {  // duplicate a slice
                const std::size_t at = r.index(s.size());
                const std::size_t len =
                    1 + r.index(std::min<std::size_t>(256, s.size() - at));
                s.insert(r.index(s.size() + 1), s.substr(at, len));
                break;
            }
            case 5: {  // long run of one byte (overlong line/token attack)
                const char c = r.chance(0.5)
                                   ? 'a'
                                   : static_cast<char>(r.below(256));
                const std::size_t len = 1u << r.between(4, 17);
                s.insert(r.index(s.size() + 1), std::string(len, c));
                break;
            }
            case 6:  // dictionary splice
                s.insert(r.index(s.size() + 1), r.pick(dictionary()));
                break;
            case 7: {  // swap two halves around a pivot
                const std::size_t at = r.index(s.size());
                s = s.substr(at) + s.substr(0, at);
                break;
            }
        }
    }
    return s;
}

/// Greedy chunk-deletion minimizer: keeps the crash property while the
/// input shrinks, halving the chunk size down to one byte.
std::string minimize(boundary b, std::string input) {
    std::string why;
    for (std::size_t chunk = input.size() / 2; chunk >= 1; chunk /= 2) {
        bool shrunk = true;
        while (shrunk) {
            shrunk = false;
            for (std::size_t at = 0; at + chunk <= input.size();
                 at += chunk) {
                std::string candidate = input;
                candidate.erase(at, chunk);
                if (crashes(b, candidate, why)) {
                    input = std::move(candidate);
                    shrunk = true;
                    break;
                }
            }
        }
        if (chunk == 1) break;
    }
    return input;
}

// ---------------------------------------------------------------------------

struct cli_args {
    std::size_t iters = 2000;
    std::uint64_t seed = 1;
    std::string out_dir = "fuzz_crashers";
    std::string replay_dir;
};

int run_replay(const std::string& dir) {
    namespace fs = std::filesystem;
    if (!fs::is_directory(dir)) {
        std::cerr << "fuzz_io: --replay: not a directory: " << dir << "\n";
        return 2;
    }
    std::vector<fs::path> files;
    for (const auto& e : fs::directory_iterator(dir))
        if (e.is_regular_file()) files.push_back(e.path());
    std::sort(files.begin(), files.end());
    std::size_t crashed = 0;
    for (const fs::path& p : files) {
        std::ifstream in(p, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        const std::string bytes = buf.str();
        const std::string stem = p.filename().string();
        // Route by filename prefix; unknown prefixes hit every boundary.
        std::vector<boundary> targets;
        for (int bi = 0; bi < 4; ++bi) {
            const boundary b = static_cast<boundary>(bi);
            if (stem.rfind(name_of(b), 0) == 0) targets = {b};
        }
        if (targets.empty())
            targets = {boundary::system_text, boundary::suite_text,
                       boundary::fault_text, boundary::snapshot};
        for (const boundary b : targets) {
            std::string why;
            if (crashes(b, bytes, why)) {
                ++crashed;
                std::cerr << "CRASH " << stem << " [" << name_of(b)
                          << "]: " << why << "\n";
            }
        }
    }
    std::cout << "replayed " << files.size() << " corpus file(s), "
              << crashed << " crash(es)\n";
    return crashed == 0 ? 0 : 1;
}

int run_fuzz(const cli_args& cli) {
    namespace fs = std::filesystem;
    rng r(cli.seed);
    std::size_t found = 0;
    std::size_t executed = 0;
    for (int bi = 0; bi < 4; ++bi) {
        const boundary b = static_cast<boundary>(bi);
        const std::vector<std::string> seeds = seeds_for(b);
        // Sanity: the unmutated seeds must pass — a red seed means the
        // fuzzer is configured wrong, not that the parser is broken.
        for (const std::string& s : seeds) {
            std::string why;
            if (crashes(b, s, why)) {
                std::cerr << "fuzz_io: seed for " << name_of(b)
                          << " crashes unmutated: " << why << "\n";
                return 2;
            }
        }
        for (std::size_t i = 0; i < cli.iters; ++i, ++executed) {
            const std::string input = mutate(r.pick(seeds), r);
            std::string why;
            if (!crashes(b, input, why)) continue;
            const std::string small = minimize(b, input);
            fs::create_directories(cli.out_dir);
            const std::string file = cli.out_dir + "/" +
                                     name_of(b) + "_" +
                                     std::to_string(found) + ".dat";
            std::ofstream out(file, std::ios::binary);
            out.write(small.data(),
                      static_cast<std::streamsize>(small.size()));
            std::cerr << "CRASH [" << name_of(b) << "] iter " << i << ": "
                      << why << "\n  minimized to " << small.size()
                      << " bytes -> " << file << "\n";
            ++found;
        }
    }
    std::cout << "fuzzed " << executed << " input(s) across 4 boundaries, "
              << found << " crash(es)\n";
    return found == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    cli_args cli;
    const std::vector<std::string> args(argv + 1, argv + argc);
    for (std::size_t i = 0; i < args.size(); ++i) {
        auto value = [&](const char* flag) -> const std::string& {
            if (i + 1 >= args.size()) {
                std::cerr << "fuzz_io: " << flag << " needs a value\n";
                std::exit(2);
            }
            return args[++i];
        };
        if (args[i] == "--iters")
            cli.iters = std::strtoull(value("--iters").c_str(), nullptr, 10);
        else if (args[i] == "--seed")
            cli.seed = std::strtoull(value("--seed").c_str(), nullptr, 10);
        else if (args[i] == "--out")
            cli.out_dir = value("--out");
        else if (args[i] == "--replay")
            cli.replay_dir = value("--replay");
        else {
            std::cerr << "usage: fuzz_io [--iters N] [--seed S] "
                         "[--out DIR] | fuzz_io --replay DIR\n";
            return 2;
        }
    }
    try {
        if (!cli.replay_dir.empty()) return run_replay(cli.replay_dir);
        return run_fuzz(cli);
    } catch (const std::exception& e) {
        // Harness-level failure (I/O, temp dir), not a parser verdict.
        std::cerr << "fuzz_io: " << e.what() << "\n";
        return 2;
    }
}
